// Tests for the topology maintenance protocol: replacement on death / low
// battery / link stretch, probe accounting, routing after repair.
#include <gtest/gtest.h>

#include "refer_fixture.hpp"

namespace refer::core {
namespace {

using test::PaperScenario;

class MaintenanceTest : public PaperScenario {
 protected:
  void build(bool run_maintenance = false) {
    add_quincunx_actuators();
    add_static_sensors(200);
    ASSERT_TRUE(build_refer(ReferConfig{.run_maintenance = run_maintenance}));
  }
};

TEST_F(MaintenanceTest, ReplacesDeadKautzNode) {
  build();
  auto& topo = system->topology();
  Cell& cell = topo.cell(0);
  const NodeId victim = *cell.node_of(Label{0, 1, 0});
  world.set_alive(victim, false);
  system->maintenance().sweep();
  const auto replacement = cell.node_of(Label{0, 1, 0});
  ASSERT_TRUE(replacement.has_value());
  EXPECT_NE(*replacement, victim);
  EXPECT_TRUE(world.alive(*replacement));
  EXPECT_EQ(topo.role(*replacement), Role::kActive);
  EXPECT_FALSE(topo.sensor_binding(victim).has_value());
  EXPECT_EQ(topo.sensor_binding(*replacement),
            std::optional(FullId{0, Label{0, 1, 0}}));
  EXPECT_GT(system->maintenance().stats().replacements, 0u);
}

TEST_F(MaintenanceTest, ReplacesLowBatteryNode) {
  build();
  auto& topo = system->topology();
  Cell& cell = topo.cell(1);
  const NodeId victim = *cell.node_of(Label{1, 0, 1});
  // Drain the victim's battery below the threshold.
  while (energy.battery(static_cast<std::size_t>(victim)) >= 8.0) {
    energy.charge_tx(static_cast<std::size_t>(victim),
                     sim::EnergyBucket::kData);
  }
  system->maintenance().sweep();
  const auto replacement = cell.node_of(Label{1, 0, 1});
  ASSERT_TRUE(replacement.has_value());
  EXPECT_NE(*replacement, victim);
  // The retired node goes back to the candidate pool.
  EXPECT_EQ(topo.role(victim), Role::kWait);
}

TEST_F(MaintenanceTest, HealthyTopologyReachesFixedPoint) {
  // The first sweep may improve a few stretched arcs left by the
  // embedding; after that a static topology must be a fixed point.
  build();
  system->maintenance().sweep();
  system->maintenance().sweep();
  const auto settled = system->maintenance().stats().replacements;
  system->maintenance().sweep();
  system->maintenance().sweep();
  EXPECT_EQ(system->maintenance().stats().replacements, settled);
}

TEST_F(MaintenanceTest, SweepsConvergeAfterRepair) {
  // Replacements can cascade for a couple of sweeps (a new holder changes
  // its neighbours' broken-arc counts) but must reach a fixed point.
  build();
  auto& cell = system->topology().cell(0);
  const NodeId victim = *cell.node_of(Label{2, 1, 2});
  world.set_alive(victim, false);
  std::uint64_t prev = system->maintenance().stats().replacements;
  bool stable = false;
  for (int i = 0; i < 8 && !stable; ++i) {
    system->maintenance().sweep();
    stable = system->maintenance().stats().replacements == prev;
    prev = system->maintenance().stats().replacements;
  }
  EXPECT_TRUE(stable) << "sweeps did not converge within 8 rounds";
  EXPECT_TRUE(cell.node_of(Label{2, 1, 2}).has_value());
}

TEST_F(MaintenanceTest, ReplacementChargesMaintenanceEnergy) {
  build();
  const double before = energy.total(sim::EnergyBucket::kMaintenance);
  auto& cell = system->topology().cell(0);
  world.set_alive(*cell.node_of(Label{0, 1, 0}), false);
  system->maintenance().sweep();
  sim.run_until(sim.now() + 1.0);
  EXPECT_GT(energy.total(sim::EnergyBucket::kMaintenance), before);
}

TEST_F(MaintenanceTest, PeriodicProbesRunWhenStarted) {
  build(/*run_maintenance=*/true);
  sim.run_until(sim.now() + 60.0);
  EXPECT_GT(system->maintenance().stats().sweeps, 10u);
  EXPECT_GT(system->maintenance().stats().probe_broadcasts, 0u);
  EXPECT_GT(energy.total(sim::EnergyBucket::kMaintenance), 0.0);
}

TEST_F(MaintenanceTest, RoutingRecoversAfterRepair) {
  build();
  auto& topo = system->topology();
  Cell& cell = topo.cell(0);
  const NodeId victim = *cell.node_of(Label{0, 2, 0});
  world.set_alive(victim, false);
  system->maintenance().sweep();
  // 102 -> 201 whose shortest path runs through 020 (now repaired).
  const NodeId src = *cell.node_of(Label{1, 0, 2});
  DeliveryReport report;
  bool called = false;
  system->send_to_actuator(src, 1000, [&](const DeliveryReport& r) {
    report = r;
    called = true;
  });
  sim.run_until(sim.now() + 5.0);
  ASSERT_TRUE(called);
  EXPECT_TRUE(report.delivered);
}

TEST_F(MaintenanceTest, MobilityTriggersReplacementsOverTime) {
  add_quincunx_actuators();
  add_mobile_sensors(200, 3.0);
  ASSERT_TRUE(build_refer());  // maintenance on
  sim.run_until(sim.now() + 120.0);
  EXPECT_GT(system->maintenance().stats().replacements, 0u)
      << "mobile Kautz nodes must eventually be replaced";
  // The overlay stays complete through the churn.
  auto& topo = system->topology();
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    EXPECT_TRUE(topo.cell(cid).complete(2)) << "cell " << cid;
  }
}

}  // namespace
}  // namespace refer::core
