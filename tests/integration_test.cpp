// Cross-module integration tests: the full REFER stack under the paper's
// evaluation conditions, and qualitative system ordering checks that
// mirror the paper's headline claims on a reduced workload.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace refer::harness {
namespace {

Scenario base_scenario() {
  Scenario sc;
  sc.warmup_s = 10;
  sc.measure_s = 60;
  sc.packets_per_second = 5;
  sc.seed = 21;
  return sc;
}

TEST(Integration, ReferSurvivesMobilityAndFaultsTogether) {
  Scenario sc = base_scenario();
  sc.mobile = true;
  sc.max_speed_mps = 3.0;
  sc.faulty_nodes = 6;
  const RunMetrics m = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  EXPECT_GT(m.delivery_ratio, 0.6);
  EXPECT_GT(m.qos_delivered, 0u);
}

TEST(Integration, ReferBeatsKautzOverlayOnDelay) {
  // Paper Figs. 6/8: topology consistency makes REFER's delay a fraction
  // of the application-layer overlay's.
  Scenario sc = base_scenario();
  sc.mobile = false;
  const RunMetrics refer = run_once(SystemKind::kRefer, sc);
  const RunMetrics overlay = run_once(SystemKind::kKautzOverlay, sc);
  ASSERT_TRUE(refer.build_ok);
  ASSERT_TRUE(overlay.build_ok);
  EXPECT_LT(refer.avg_delay_ms, overlay.avg_delay_ms);
}

TEST(Integration, ReferUsesLessCommEnergyThanBaselinesUnderMobility) {
  // Paper Fig. 5 at moderate speed.
  Scenario sc = base_scenario();
  sc.mobile = true;
  sc.max_speed_mps = 3.0;
  const RunMetrics refer = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(refer.build_ok);
  for (SystemKind kind :
       {SystemKind::kDaTree, SystemKind::kKautzOverlay}) {
    const RunMetrics other = run_once(kind, sc);
    ASSERT_TRUE(other.build_ok) << to_string(kind);
    EXPECT_LT(refer.comm_energy_j, other.comm_energy_j) << to_string(kind);
  }
}

TEST(Integration, KautzOverlayPaysTheMostConstructionEnergy) {
  // Paper Fig. 10 ordering: Kautz-overlay >> REFER > D-DEAR > DaTree is
  // the paper's claim; we check the two robust endpoints (the middle pair
  // depends on constants).
  Scenario sc = base_scenario();
  sc.mobile = false;
  sc.measure_s = 10;
  double cost[4];
  int i = 0;
  for (SystemKind kind : kAllSystems) {
    const RunMetrics m = run_once(kind, sc);
    ASSERT_TRUE(m.build_ok) << to_string(kind);
    cost[i++] = m.construction_energy_j;
  }
  const double refer_j = cost[0], datree_j = cost[1], overlay_j = cost[3];
  EXPECT_GT(overlay_j, refer_j);
  EXPECT_GT(refer_j, datree_j);
}

TEST(Integration, ConstructionEnergyIsSmallVersusCommunication) {
  // Paper Fig. 11: topology construction is a tiny fraction of the total
  // (0.1% at the paper's 1 Mbps x 1000 s workload).  Our default workload
  // is scaled down ~100x for wall-clock speed, so the check is that
  // construction stays below communication and that the ratio shrinks as
  // traffic grows (it amortises).
  Scenario sc = base_scenario();
  sc.measure_s = 60;
  sc.packets_per_second = 8;
  const RunMetrics light = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(light.build_ok);
  sc.packets_per_second = 24;
  const RunMetrics heavy = run_once(SystemKind::kRefer, sc);
  ASSERT_TRUE(heavy.build_ok);
  EXPECT_LT(heavy.construction_energy_j, heavy.comm_energy_j);
  EXPECT_LT(heavy.construction_energy_j / heavy.comm_energy_j,
            light.construction_energy_j / light.comm_energy_j)
      << "construction must amortise with traffic volume";
}

TEST(Integration, HigherMobilityCostsReferLittleThroughput) {
  // Paper Fig. 4's REFER curve is nearly flat.
  Scenario still = base_scenario();
  still.mobile = false;
  Scenario fast = base_scenario();
  fast.mobile = true;
  fast.max_speed_mps = 5.0;
  const RunMetrics a = run_once(SystemKind::kRefer, still);
  const RunMetrics b = run_once(SystemKind::kRefer, fast);
  ASSERT_TRUE(a.build_ok);
  ASSERT_TRUE(b.build_ok);
  EXPECT_GT(b.qos_throughput_kbps, 0.6 * a.qos_throughput_kbps);
}

}  // namespace
}  // namespace refer::harness
