// Tests for the SIII-A comparison topologies (de Bruijn, hypercube) and
// the degree/diameter trade-off claims behind Proposition 3.1.
#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <unordered_map>

#include "kautz/alternatives.hpp"
#include "kautz/graph.hpp"

namespace refer::kautz {
namespace {

TEST(DeBruijn, CountsAndValidity) {
  const DeBruijnGraph g(2, 3);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_TRUE(g.contains(Label{0, 0, 0}));  // repeats allowed
  EXPECT_TRUE(g.contains(Label{1, 1, 1}));
  EXPECT_FALSE(g.contains(Label{0, 2, 0}));  // letter out of range
  EXPECT_FALSE(g.contains(Label{0, 1}));
  const auto nodes = g.nodes();
  EXPECT_EQ(nodes.size(), 8u);
  EXPECT_EQ(std::set<Label>(nodes.begin(), nodes.end()).size(), 8u);
}

TEST(DeBruijn, NeighborsAreShifts) {
  const DeBruijnGraph g(2, 3);
  const auto out = g.out_neighbors(Label{0, 1, 1});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Label{1, 1, 0}));
  EXPECT_EQ(out[1], (Label{1, 1, 1}));
}

TEST(DeBruijn, DistanceMatchesBfs) {
  const DeBruijnGraph g(2, 4);
  const auto nodes = g.nodes();
  for (const auto& u : nodes) {
    // BFS ground truth.
    std::unordered_map<Label, int, LabelHash> dist{{u, 0}};
    std::deque<Label> frontier{u};
    while (!frontier.empty()) {
      const Label x = frontier.front();
      frontier.pop_front();
      for (const Label& w : g.out_neighbors(x)) {
        if (dist.emplace(w, dist[x] + 1).second) frontier.push_back(w);
      }
    }
    for (const auto& v : nodes) {
      EXPECT_EQ(DeBruijnGraph::distance(u, v), dist.at(v))
          << u.to_string() << " -> " << v.to_string();
    }
  }
}

TEST(DeBruijn, KautzHasMoreNodesAtSameDegreeDiameter) {
  // (d+1) d^{k-1} > d^k, the first leg of Proposition 3.1.
  for (int d = 2; d <= 5; ++d) {
    for (int k = 2; k <= 6; ++k) {
      EXPECT_GT(Graph(d, k).node_count(), DeBruijnGraph(d, k).node_count())
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(Hypercube, BasicStructure) {
  const HypercubeGraph h(4);
  EXPECT_EQ(h.node_count(), 16u);
  EXPECT_EQ(h.degree(), 4);
  EXPECT_EQ(h.diameter(), 4);
  const auto n = h.neighbors(0b0101);
  EXPECT_EQ(n.size(), 4u);
  for (std::uint64_t x : n) {
    EXPECT_EQ(HypercubeGraph::distance(0b0101, x), 1);
  }
}

TEST(Hypercube, DistanceIsHamming) {
  EXPECT_EQ(HypercubeGraph::distance(0b0000, 0b1111), 4);
  EXPECT_EQ(HypercubeGraph::distance(0b1010, 0b1010), 0);
  EXPECT_EQ(HypercubeGraph::distance(0b1010, 0b1000), 1);
}

TEST(Hypercube, DiameterRealizedByComplement) {
  const HypercubeGraph h(6);
  EXPECT_EQ(HypercubeGraph::distance(0, (1ULL << 6) - 1), 6);
}

TEST(Tradeoff, KautzWinsAtEveryScale) {
  // Proposition 3.1 numerically: for the same degree budget, Kautz
  // reaches the target size with diameter <= de Bruijn's, and with far
  // smaller degree+diameter than the hypercube.
  for (std::uint64_t target : {50ull, 200ull, 1000ull, 10000ull}) {
    const auto rows = compare_topologies(target, /*degree=*/3);
    ASSERT_EQ(rows.size(), 3u);
    const auto& kautz = rows[0];
    const auto& debruijn = rows[1];
    const auto& hypercube = rows[2];
    EXPECT_GE(kautz.nodes, target);
    EXPECT_LE(kautz.diameter, debruijn.diameter) << "target " << target;
    EXPECT_LT(kautz.diameter, hypercube.diameter) << "target " << target;
    EXPECT_LT(kautz.degree, hypercube.degree) << "target " << target;
  }
}

TEST(Tradeoff, EulerEqualityOnlyForKautz) {
  // Lemma 3.1's optimality: |E| = N * d for Kautz; the hypercube has the
  // same equality but with degree growing as log N, which is the point of
  // the comparison.
  const Graph g(3, 3);
  EXPECT_EQ(g.edge_count(), g.node_count() * 3);
  const HypercubeGraph h(6);  // 64 nodes needs degree 6
  EXPECT_GT(h.degree(), g.degree());
  EXPECT_LT(g.node_count(), h.node_count());
}

TEST(Tradeoff, RowsReachTheTarget) {
  for (int degree : {2, 3, 4}) {
    for (std::uint64_t target : {10ull, 500ull, 5000ull}) {
      for (const auto& row : compare_topologies(target, degree)) {
        EXPECT_GE(row.nodes, target)
            << row.family << " d=" << degree << " target=" << target;
        EXPECT_GE(row.degree, 1);
        EXPECT_GE(row.diameter, 1);
      }
    }
  }
}

TEST(DeBruijn, RejectsInvalidParameters) {
  EXPECT_THROW(DeBruijnGraph(0, 3), std::invalid_argument);
  EXPECT_THROW(DeBruijnGraph(2, 0), std::invalid_argument);
  EXPECT_THROW(HypercubeGraph(0), std::invalid_argument);
  EXPECT_THROW(HypercubeGraph(63), std::invalid_argument);
}

}  // namespace
}  // namespace refer::kautz
