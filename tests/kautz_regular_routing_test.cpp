// Conformance suite for regular all-to-all routing (kautz/regular.hpp,
// Faber & Streib): every route is a valid arc walk of at most k + 1
// hops, the separator is a pure function of the endpoint labels, walks
// truncate at the first arrival, and -- the property the protocol
// exists for -- all-to-all traffic loads the arcs of K(d,k) near
// uniformly (max/min spread <= 2) where greedy shortest paths skew.
// Exhaustive over every ordered pair for each swept (d, k).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "kautz/graph.hpp"
#include "kautz/regular.hpp"
#include "kautz/routing.hpp"

namespace refer::kautz {
namespace {

struct DK {
  int d;
  int k;
};

class RegularRouting : public ::testing::TestWithParam<DK> {};

/// Per-arc traversal counts of one path family over all ordered pairs,
/// keyed by (tail index, head index); `paths(u, v)` yields the node
/// sequence U ... V.
template <typename PathFn>
std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
arc_loads(const Graph& g, PathFn&& paths) {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> loads;
  const auto nodes = g.nodes();
  for (const Label& u : nodes) {
    for (const Label& v : nodes) {
      if (u == v) continue;
      const std::vector<Label> path = paths(u, v);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ++loads[{path[i].to_index(g.degree()),
                 path[i + 1].to_index(g.degree())}];
      }
    }
  }
  return loads;
}

/// Busiest arc over quietest arc -- the load-balance spread.  An unused
/// arc counts as load 0 and makes the spread infinite, which is exactly
/// right: all-to-all balance means *every* arc pulls its weight.
double max_over_min(
    const Graph& g,
    const std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>&
        loads) {
  const std::uint64_t arcs =
      g.node_count() * static_cast<std::uint64_t>(g.degree());
  if (loads.size() < arcs) return std::numeric_limits<double>::infinity();
  std::uint64_t min = ~0ull, max = 0;
  for (const auto& [arc, n] : loads) {
    min = std::min(min, n);
    max = std::max(max, n);
  }
  return static_cast<double>(max) / static_cast<double>(min);
}

TEST_P(RegularRouting, EveryRouteIsAValidArcWalkWithinTheLengthBound) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  const auto nodes = g.nodes();
  for (const Label& u : nodes) {
    EXPECT_EQ(regular_route(d, u, u).length, 0);
    for (const Label& v : nodes) {
      if (u == v) continue;
      const RegularRoute route = regular_route(d, u, v);
      // The untruncated program appends v_1..v_k, preceded by the
      // separator exactly when the concatenation would stutter.
      const bool needs_separator = u.last() == v.first();
      EXPECT_EQ(route.has_separator, needs_separator);
      EXPECT_EQ(route.length, k + (needs_separator ? 1 : 0));

      const std::vector<Label> path = regular_path(d, u, v);
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_LE(static_cast<int>(path.size()) - 1, k + 1);
      EXPECT_EQ(path[1], regular_successor(d, u, v));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        // Each hop follows the program and is a real arc of K(d,k).
        EXPECT_EQ(path[i + 1],
                  path[i].shift_append(route.digits[i]));
        EXPECT_TRUE(g.contains(path[i + 1]))
            << u.to_string() << " -> " << v.to_string() << " hop " << i;
      }
    }
  }
}

TEST_P(RegularRouting, SeparatorIsAPureFunctionAndNeverStutters) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const Label& u : g.nodes()) {
    for (const Label& v : g.nodes()) {
      if (u == v || u.last() != v.first()) continue;
      const Digit s = regular_separator(d, u, v);
      EXPECT_NE(s, u.last());
      EXPECT_LE(s, static_cast<Digit>(d));
      // Re-derivable with no run state: same labels, same digit -- the
      // contract the trace_report --strict audit leans on.
      EXPECT_EQ(s, regular_separator(d, u, v));
      EXPECT_EQ(regular_route(d, u, v).digits[0], s);
    }
  }
}

TEST_P(RegularRouting, WalksTruncateAtTheFirstArrival) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const Label& u : g.nodes()) {
    for (const Label& v : g.nodes()) {
      if (u == v) continue;
      const std::vector<Label> path = regular_path(d, u, v);
      // V appears exactly once, at the end: the walk stops on arrival
      // instead of forwarding a delivered packet onward.
      EXPECT_EQ(std::count(path.begin(), path.end(), v), 1);
      EXPECT_LE(static_cast<int>(path.size()) - 1,
                regular_route(d, u, v).length);
    }
  }
}

TEST_P(RegularRouting, AllToAllArcLoadIsNearUniformAndBeatsGreedy) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  const auto regular = arc_loads(
      g, [d](const Label& u, const Label& v) { return regular_path(d, u, v); });
  const auto greedy = arc_loads(
      g, [](const Label& u, const Label& v) { return shortest_path(u, v); });

  // Same total pair count either way; regular pays extra hops...
  std::uint64_t reg_total = 0, greedy_total = 0;
  for (const auto& [arc, n] : regular) reg_total += n;
  for (const auto& [arc, n] : greedy) greedy_total += n;
  EXPECT_GE(reg_total, greedy_total);

  // ...to buy balance: the busiest arc carries at most twice the
  // quietest (truncation keeps it from the exact d^{k-1} * k ideal of
  // the untruncated family, which would be spread 1 plus the separator
  // scatter), strictly flatter than the greedy skew -- measured spreads
  // 1.75 vs 2.14 on K(2,3), 1.90 vs 3.00 on K(2,4), 1.61 vs 2.00 on
  // K(3,3), 1.72 vs 2.68 on K(3,4).
  const double reg_spread = max_over_min(g, regular);
  const double greedy_spread = max_over_min(g, greedy);
  EXPECT_LE(reg_spread, 2.0) << "regular max/min arc load";
  EXPECT_LT(reg_spread, greedy_spread)
      << "regular must balance strictly better than greedy";

  // Regular routing touches every arc of the graph; greedy's skew is
  // exactly that it concentrates on a subset.
  EXPECT_EQ(regular.size(),
            g.node_count() * static_cast<std::uint64_t>(d));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegularRouting,
                         ::testing::Values(DK{2, 3}, DK{2, 4}, DK{3, 3},
                                           DK{3, 4}),
                         [](const ::testing::TestParamInfo<DK>& info) {
                           return "K" + std::to_string(info.param.d) + "_" +
                                  std::to_string(info.param.k);
                         });

}  // namespace
}  // namespace refer::kautz
