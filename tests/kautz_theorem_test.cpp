// Exhaustive verification of Theorem 3.8 against BFS ground truth on whole
// graphs: every ordered node pair of several K(d, k) instances.
#include <gtest/gtest.h>

#include "kautz/graph.hpp"
#include "kautz/routing.hpp"
#include "kautz/verifier.hpp"

namespace refer::kautz {
namespace {

class TheoremSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TheoremSweep, ShortestNominalLengthEqualsBfsDistance) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& u : g.nodes()) {
    const auto dist = bfs_distances(g, u);
    for (const auto& v : g.nodes()) {
      if (u == v) continue;
      const auto routes = disjoint_routes(d, u, v);
      ASSERT_EQ(routes.front().path_class, PathClass::kShortest);
      EXPECT_EQ(routes.front().nominal_length, dist.at(v))
          << u.to_string() << " -> " << v.to_string();
      EXPECT_EQ(routes.front().nominal_length, kautz_distance(u, v));
    }
  }
}

TEST_P(TheoremSweep, EveryRouteMaterializesWithinNominalLength) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& u : g.nodes()) {
    for (const auto& v : g.nodes()) {
      if (u == v) continue;
      const auto routes = disjoint_routes(d, u, v);
      ASSERT_EQ(routes.size(), static_cast<std::size_t>(d));
      std::vector<std::vector<Label>> paths;
      for (const auto& r : routes) {
        paths.push_back(materialize_path(u, v, r, 4 * k + 8));
        EXPECT_LE(static_cast<int>(paths.back().size()) - 1, r.nominal_length)
            << u.to_string() << " -> " << v.to_string() << " via "
            << r.successor.to_string();
      }
      EXPECT_TRUE(all_paths_valid(g, u, v, paths))
          << u.to_string() << " -> " << v.to_string();
    }
  }
}

TEST_P(TheoremSweep, RoutesUseAllDOutNeighborsExactlyOnce) {
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& u : g.nodes()) {
    for (const auto& v : g.nodes()) {
      if (u == v) continue;
      const auto routes = disjoint_routes(d, u, v);
      auto expected = g.out_neighbors(u);
      std::vector<Label> got;
      for (const auto& r : routes) got.push_back(r.successor);
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(got, expected);
    }
  }
}

TEST_P(TheoremSweep, InDigitsOfAllRoutesAreDistinct) {
  // Proposition 3.7's purpose: after redirecting every colliding path onto
  // the free in-digit, all d paths have pairwise distinct in-digits, hence
  // distinct predecessors of V, hence no intersection at the last hop.
  // With the two degenerate-case redirects implemented in disjoint_routes
  // (see routing.cpp), distinctness holds unconditionally.  A redirected
  // (conflict-class) path's in-digit is the digit it is forced to append,
  // i.e. forced_second_hop's last digit.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  for (const auto& u : g.nodes()) {
    for (const auto& v : g.nodes()) {
      if (u == v) continue;
      const auto routes = disjoint_routes(d, u, v);
      std::vector<Digit> digits;
      for (const auto& r : routes) {
        if (r.path_class == PathClass::kConflict) {
          digits.push_back(r.forced_second_hop->last());
        } else {
          digits.push_back(in_digit(u, v, r.successor.last()));
        }
      }
      std::sort(digits.begin(), digits.end());
      EXPECT_EQ(std::adjacent_find(digits.begin(), digits.end()), digits.end())
          << u.to_string() << " -> " << v.to_string();
    }
  }
}

TEST_P(TheoremSweep, InDigitPredictionMatchesGreedyReality) {
  // Proposition 3.3 empirically: for every successor of U, when the
  // greedy walk from that successor takes its nominal number of hops (no
  // coincidental shortcut), the walk's actual predecessor of V starts
  // with exactly the in-digit the proposition predicts.
  const auto [d, k] = GetParam();
  const Graph g(d, k);
  std::size_t checked = 0;
  for (const auto& u : g.nodes()) {
    for (const auto& v : g.nodes()) {
      if (u == v) continue;
      for (const auto& r : disjoint_routes(d, u, v)) {
        if (r.path_class == PathClass::kConflict) continue;  // redirected
        const auto path = materialize_path(u, v, r, 4 * k + 8);
        if (static_cast<int>(path.size()) - 1 != r.nominal_length) {
          continue;  // greedy shortcut: outside the proposition's premise
        }
        if (path.size() < 2) continue;
        const Label& pred = path[path.size() - 2];
        EXPECT_EQ(pred.first(), in_digit(u, v, r.successor.last()))
            << u.to_string() << " -> " << v.to_string() << " via "
            << r.successor.to_string();
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, g.node_count()) << "premise must hold often";
}

INSTANTIATE_TEST_SUITE_P(Graphs, TheoremSweep,
                         ::testing::Values(std::pair{2, 2}, std::pair{2, 3},
                                           std::pair{2, 4}, std::pair{3, 2},
                                           std::pair{3, 3}, std::pair{4, 2},
                                           std::pair{4, 3}));

TEST(RouteGeneration, FindsDDisjointPathsButVisitsManyNodes) {
  // The DFTR-style baseline [21] the paper says REFER avoids: it does find
  // d disjoint paths, but only by exploring a large part of the graph.
  const Graph g(4, 4);
  const Label u = *Label::parse("0123"), v = *Label::parse("2301");
  const auto paths = route_generation_disjoint_paths(g, u, v);
  EXPECT_EQ(paths.size(), 4u);
  EXPECT_TRUE(all_paths_valid(g, u, v, paths));
  EXPECT_TRUE(internally_disjoint(paths));
  const auto cost = route_generation_cost(g, u, v);
  EXPECT_EQ(cost.paths_found, 4u);
  // Theorem 3.8 needs to look at exactly d successors; the tree/BFS method
  // touches far more nodes.
  EXPECT_GT(cost.nodes_visited, 16u);
}

TEST(RouteGeneration, DisjointnessCheckerCatchesSharedInternalNode) {
  std::vector<std::vector<Label>> paths{
      {Label{0, 1}, Label{1, 2}, Label{2, 0}},
      {Label{0, 1}, Label{1, 2}, Label{2, 0}},
  };
  EXPECT_FALSE(internally_disjoint(paths));
  std::vector<std::vector<Label>> ok{
      {Label{0, 1}, Label{1, 2}, Label{2, 0}},
      {Label{0, 1}, Label{1, 0}, Label{2, 0}},
  };
  EXPECT_TRUE(internally_disjoint(ok));
}

TEST(RouteGeneration, CycleWithinOnePathRejected) {
  std::vector<std::vector<Label>> cyc{
      {Label{0, 1}, Label{1, 2}, Label{0, 1}},
  };
  EXPECT_FALSE(internally_disjoint(cyc));
}

}  // namespace
}  // namespace refer::kautz
