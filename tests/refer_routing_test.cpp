// Tests for the REFER router: intra-cell Theorem 3.8 fail-over, relay
// detours, inter-cell CAN transit, delivery accounting.
#include <gtest/gtest.h>

#include <set>

#include "refer_fixture.hpp"

namespace refer::core {
namespace {

using test::PaperScenario;

class RoutingTest : public PaperScenario {
 protected:
  void build() {
    add_quincunx_actuators();
    add_static_sensors(200);
    ASSERT_TRUE(build_refer(ReferConfig{.run_maintenance = false}));
  }

  DeliveryReport send_and_wait_actuator(NodeId src) {
    DeliveryReport report;
    bool called = false;
    system->send_to_actuator(src, 1000, [&](const DeliveryReport& r) {
      report = r;
      called = true;
    });
    sim.run_until(sim.now() + 5.0);
    EXPECT_TRUE(called);
    return report;
  }

  DeliveryReport send_and_wait_full(NodeId src, FullId dst) {
    DeliveryReport report;
    bool called = false;
    system->send_to(src, dst, 1000, [&](const DeliveryReport& r) {
      report = r;
      called = true;
    });
    sim.run_until(sim.now() + 5.0);
    EXPECT_TRUE(called);
    return report;
  }
};

TEST_F(RoutingTest, ActiveSensorReachesActuatorFast) {
  build();
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    const NodeId src = system->random_active_sensor(rng);
    ASSERT_GE(src, 0);
    const auto report = send_and_wait_actuator(src);
    EXPECT_TRUE(report.delivered);
    EXPECT_TRUE(world.is_actuator(report.final_node));
    EXPECT_LT(report.delay_s, 0.6) << "QoS bound (paper SIV)";
    EXPECT_LE(report.kautz_hops, 3) << "at most the K(2,3) diameter";
  }
}

TEST_F(RoutingTest, ActuatorSourceDeliversImmediately) {
  build();
  const auto report = send_and_wait_actuator(actuators[0]);
  EXPECT_TRUE(report.delivered);
  EXPECT_EQ(report.final_node, actuators[0]);
  EXPECT_EQ(report.physical_hops, 0);
}

TEST_F(RoutingTest, WaitSensorEntersOverlayThroughNearestMember) {
  build();
  // Find a wait-state sensor.
  NodeId src = -1;
  for (NodeId s : sensors) {
    if (system->topology().role(s) == Role::kWait) {
      src = s;
      break;
    }
  }
  ASSERT_GE(src, 0);
  const auto report = send_and_wait_actuator(src);
  EXPECT_TRUE(report.delivered);
  EXPECT_TRUE(world.is_actuator(report.final_node));
}

TEST_F(RoutingTest, FailoverRoutesAroundDeadSuccessor) {
  build();
  // Pick a cell and kill the shortest-path successor between a known pair:
  // source 102 routing to 201 goes through 020 (paper Figure 1 example);
  // the alternative successor is 021.
  auto& topo = system->topology();
  const Cell& cell = topo.cell(0);
  const NodeId src = *cell.node_of(Label{1, 0, 2});
  const NodeId blocker = *cell.node_of(Label{0, 2, 0});
  world.set_alive(blocker, false);
  const auto before = system->router().stats().failovers;
  const auto report = send_and_wait_actuator(src);
  EXPECT_TRUE(report.delivered);
  EXPECT_GT(system->router().stats().failovers, before)
      << "the dead successor must trigger a local fail-over";
}

TEST_F(RoutingTest, DropsWhenWholeNeighborhoodIsDead) {
  build();
  auto& topo = system->topology();
  const Cell& cell = topo.cell(0);
  const NodeId src = *cell.node_of(Label{1, 0, 2});
  // Kill every possible successor of 102 (020, 021) and every other
  // sensor it could relay through -- isolate the node completely.
  for (NodeId s : sensors) {
    if (s != src) world.set_alive(s, false);
  }
  for (NodeId a : actuators) world.set_alive(a, false);
  const auto report = send_and_wait_actuator(src);
  EXPECT_FALSE(report.delivered);
  EXPECT_GT(system->router().stats().packets_dropped, 0u);
}

TEST_F(RoutingTest, FullAddressingWithinSameCell) {
  build();
  const Cell& cell = system->topology().cell(0);
  const NodeId src = *cell.node_of(Label{0, 1, 0});
  const auto report =
      send_and_wait_full(src, FullId{0, Label{2, 1, 0}});
  EXPECT_TRUE(report.delivered);
  EXPECT_EQ(report.final_node, *cell.node_of(Label{2, 1, 0}));
}

TEST_F(RoutingTest, FullAddressingAcrossCells) {
  build();
  auto& topo = system->topology();
  ASSERT_GE(topo.cell_count(), 2u);
  const Cell& src_cell = topo.cell(0);
  const Cid dst_cid = static_cast<Cid>(topo.cell_count()) - 1;
  const Cell& dst_cell = topo.cell(dst_cid);
  const NodeId src = *src_cell.node_of(Label{0, 1, 0});
  const Label dst_kid{1, 0, 1};
  const auto report = send_and_wait_full(src, FullId{dst_cid, dst_kid});
  EXPECT_TRUE(report.delivered);
  EXPECT_EQ(report.final_node, *dst_cell.node_of(dst_kid));
  EXPECT_LT(report.delay_s, 1.0);
}

TEST_F(RoutingTest, CrossCellUsesCanHopsOnStripTopology) {
  // In the quincunx every cell pair shares an actuator, so CAN transit is
  // never needed; a zig-zag strip of 6 actuators yields a chain of 4
  // cells where the end cells share no corner -- the packet must hop the
  // CAN.
  for (int i = 0; i < 6; ++i) {
    actuators.push_back(world.add_actuator(
        {60.0 + 80.0 * i, i % 2 ? 320.0 : 180.0}, kActuatorRange));
  }
  add_static_sensors(300);
  ASSERT_TRUE(build_refer(ReferConfig{.run_maintenance = false}));
  auto& topo = system->topology();
  ASSERT_GE(topo.cell_count(), 3u);
  // Find two cells with disjoint corner sets.
  Cid from_cid = -1, to_cid = -1;
  for (Cid a = 0; a < static_cast<Cid>(topo.cell_count()) && from_cid < 0;
       ++a) {
    for (Cid b = 0; b < static_cast<Cid>(topo.cell_count()); ++b) {
      std::set<NodeId> corners;
      for (const auto& c : topo.cell(a).corner_actuators()) corners.insert(*c);
      bool disjoint = true;
      for (const auto& c : topo.cell(b).corner_actuators()) {
        if (corners.contains(*c)) disjoint = false;
      }
      if (disjoint) {
        from_cid = a;
        to_cid = b;
        break;
      }
    }
  }
  ASSERT_GE(from_cid, 0) << "strip must contain corner-disjoint cells";
  const NodeId src = *topo.cell(from_cid).node_of(Label{0, 1, 0});
  const auto before = system->router().stats().can_hops;
  const auto report = send_and_wait_full(src, FullId{to_cid, Label{1, 0, 1}});
  EXPECT_TRUE(report.delivered);
  EXPECT_GT(system->router().stats().can_hops, before);
}

TEST_F(RoutingTest, AscentRetargetsWhenNearestActuatorDies) {
  // Kill a corner actuator: packets that would ascend to it must
  // re-target another corner of the cell instead of dropping.
  build();
  auto& topo = system->topology();
  const Cell& cell = topo.cell(0);
  // Sensor 101 is one Kautz hop from corner 012.
  const NodeId src = *cell.node_of(Label{1, 0, 1});
  const NodeId near_corner = *cell.node_of(Label{0, 1, 2});
  world.set_alive(near_corner, false);
  const auto report = send_and_wait_actuator(src);
  EXPECT_TRUE(report.delivered);
  EXPECT_TRUE(world.is_actuator(report.final_node));
  EXPECT_NE(report.final_node, near_corner);
  world.set_alive(near_corner, true);
}

TEST_F(RoutingTest, EqualLengthTieBreakIsRandomised) {
  // From 010 towards 121 (l = 0) both K(2,3) alternatives... the paper's
  // random choice applies to equal-length path sets; verify the router
  // does not always pick the same successor for a pair with two
  // same-length options by sampling many sends and checking both
  // successors carried traffic.  Pair 010 -> 121: shortest k (via 101?);
  // use stats: the simpler observable is that repeated sends still all
  // deliver (randomisation must not break routing).
  build();
  const Cell& cell = system->topology().cell(0);
  const NodeId src = *cell.node_of(Label{0, 1, 0});
  for (int i = 0; i < 10; ++i) {
    const auto report = send_and_wait_actuator(src);
    EXPECT_TRUE(report.delivered);
  }
}

TEST_F(RoutingTest, ConflictRouteDirectiveIsFollowed) {
  // K(2,3) pair 010 -> 021 has a conflict-class alternative (successor
  // 101 with forced second hop 012, Proposition 3.7).  Killing the
  // shortest successor 102 forces the router onto it.
  build();
  const auto routes = kautz::disjoint_routes(2, Label{0, 1, 0},
                                             Label{0, 2, 1});
  ASSERT_EQ(routes.size(), 2u);
  ASSERT_EQ(routes[0].successor, (Label{1, 0, 2}));
  ASSERT_EQ(routes[1].path_class, kautz::PathClass::kConflict);
  ASSERT_TRUE(routes[1].forced_second_hop.has_value());
  EXPECT_EQ(*routes[1].forced_second_hop, (Label{0, 1, 2}));

  const Cell& cell = system->topology().cell(0);
  const NodeId src = *cell.node_of(Label{0, 1, 0});
  world.set_alive(*cell.node_of(Label{1, 0, 2}), false);
  const auto before = system->router().stats().failovers;
  const auto report = send_and_wait_full(src, FullId{0, Label{0, 2, 1}});
  EXPECT_TRUE(report.delivered);
  EXPECT_EQ(report.final_node, *cell.node_of(Label{0, 2, 1}));
  EXPECT_GT(system->router().stats().failovers, before);
}

TEST_F(RoutingTest, ActuatorCommandsSensorsReverseDirection) {
  // The paper's bidirectional claim (SIII-B: "communication in the other
  // direction can be conducted by simply reversing the direction"): an
  // actuator addresses a command to a specific sensor (cid, kid).
  build();
  auto& topo = system->topology();
  for (Cid cid = 0; cid < static_cast<Cid>(topo.cell_count()); ++cid) {
    const Label kid{2, 1, 0};
    const NodeId target = *topo.cell(cid).node_of(kid);
    const auto report =
        send_and_wait_full(actuators[0], FullId{cid, kid});
    EXPECT_TRUE(report.delivered) << "cell " << cid;
    EXPECT_EQ(report.final_node, target) << "cell " << cid;
  }
}

TEST_F(RoutingTest, AnySensorPairCanCommunicate) {
  // Full any-to-any addressing within and across cells.
  build();
  auto& topo = system->topology();
  Rng rng(41);
  int delivered = 0;
  const int total = 20;
  for (int i = 0; i < total; ++i) {
    const NodeId src = system->random_active_sensor(rng);
    const Cid dst_cid =
        static_cast<Cid>(rng.below(topo.cell_count()));
    const auto labels = topo.cell(dst_cid).labels();
    const Label dst_kid = labels[rng.below(labels.size())];
    const NodeId dst_node = *topo.cell(dst_cid).node_of(dst_kid);
    if (dst_node == src) continue;
    const auto report = send_and_wait_full(src, FullId{dst_cid, dst_kid});
    EXPECT_TRUE(report.delivered)
        << src << " -> " << FullId{dst_cid, dst_kid}.to_string();
    delivered += report.delivered;
  }
  EXPECT_GE(delivered, total - 2);
}

TEST_F(RoutingTest, InvalidDestinationCellDropsCleanly) {
  build();
  const NodeId src = *system->topology().cell(0).node_of(Label{0, 1, 0});
  const auto report = send_and_wait_full(src, FullId{99, Label{1, 0, 1}});
  EXPECT_FALSE(report.delivered);
}

TEST_F(RoutingTest, DeliveryCountsMatchStats) {
  build();
  Rng rng(23);
  int delivered = 0, dropped = 0;
  for (int i = 0; i < 20; ++i) {
    const NodeId src = system->random_active_sensor(rng);
    const auto r = send_and_wait_actuator(src);
    r.delivered ? ++delivered : ++dropped;
  }
  const auto& stats = system->router().stats();
  EXPECT_EQ(stats.packets_sent, 20u);
  EXPECT_EQ(stats.packets_delivered, static_cast<std::uint64_t>(delivered));
  EXPECT_EQ(stats.packets_dropped, static_cast<std::uint64_t>(dropped));
}

TEST_F(RoutingTest, DataEnergyChargedToDataBucket) {
  build();
  const double before = energy.total(sim::EnergyBucket::kData);
  Rng rng(29);
  send_and_wait_actuator(system->random_active_sensor(rng));
  EXPECT_GT(energy.total(sim::EnergyBucket::kData), before);
}

TEST_F(RoutingTest, MobileScenarioStillDelivers) {
  add_quincunx_actuators();
  add_mobile_sensors(200, 3.0);
  ASSERT_TRUE(build_refer());  // with maintenance
  Rng rng(31);
  int delivered = 0;
  const int total = 30;
  for (int i = 0; i < total; ++i) {
    sim.run_until(sim.now() + 2.0);  // let nodes move between sends
    const NodeId src = system->random_active_sensor(rng);
    if (src < 0) continue;
    const auto r = send_and_wait_actuator(src);
    delivered += r.delivered;
  }
  EXPECT_GT(delivered * 10, total * 7)
      << delivered << "/" << total << " delivered under mobility";
}

}  // namespace
}  // namespace refer::core
