// The verification engine end to end: fuzz seeds are pure functions of
// their value, clean scenarios raise no invariant violations, a planted
// bug is caught -> shrunk -> replayed from repro.json to the same
// violation, and replaying any seed twice is field-for-field identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"
#include "verify/repro.hpp"
#include "verify/shrink.hpp"

namespace refer::verify {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ------------------------------------------------------------ generator

TEST(ScenarioFuzzer, GenerateIsAPureFunctionOfTheSeed) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xFFFFFFFFFFFFULL}) {
    const harness::Scenario a = ScenarioFuzzer::generate(seed);
    const harness::Scenario b = ScenarioFuzzer::generate(seed);
    ReproCase ra{harness::SystemKind::kRefer, a, ""};
    ReproCase rb{harness::SystemKind::kRefer, b, ""};
    EXPECT_EQ(to_repro_json(ra), to_repro_json(rb)) << "seed " << seed;
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(ScenarioFuzzer, DifferentSeedsGiveDifferentScenarios) {
  const harness::Scenario a = ScenarioFuzzer::generate(1);
  const harness::Scenario b = ScenarioFuzzer::generate(2);
  ReproCase ra{harness::SystemKind::kRefer, a, ""};
  ReproCase rb{harness::SystemKind::kRefer, b, ""};
  EXPECT_NE(to_repro_json(ra), to_repro_json(rb));
}

// ------------------------------------------------------ invariant engine

TEST(InvariantChecker, CleanScenarioRaisesNothingAndSeesTraffic) {
  harness::Scenario sc = ScenarioFuzzer::generate(1);
  sc.trace_path = temp_path("verify_clean.jsonl");
  InvariantChecker checker;
  sc.observer = &checker;
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  EXPECT_GT(m.packets_sent, 0u) << "fuzz cases must carry real traffic";
  EXPECT_GT(checker.records_seen(), 100u)
      << "the tap must observe the run at event granularity";
  EXPECT_TRUE(checker.clean()) << "first violation: "
                               << checker.violations().front().check << ": "
                               << checker.violations().front().detail;
  std::remove(sc.trace_path.c_str());
}

TEST(InvariantChecker, WorksWithoutATraceFile) {
  harness::Scenario sc = ScenarioFuzzer::generate(2);
  InvariantChecker checker;
  sc.observer = &checker;
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kRefer, sc);
  ASSERT_TRUE(m.build_ok);
  // The tap still feeds the event-granularity checks; only the offline
  // trace audit is skipped.
  EXPECT_GT(checker.records_seen(), 0u);
  EXPECT_TRUE(checker.clean());
}

TEST(InvariantChecker, ChecksTheBaselinesToo) {
  harness::Scenario sc = ScenarioFuzzer::generate(3);
  InvariantChecker checker;
  sc.observer = &checker;
  const harness::RunMetrics m =
      harness::run_once(harness::SystemKind::kDaTree, sc);
  ASSERT_TRUE(m.build_ok);
  EXPECT_TRUE(checker.clean());
}

// ------------------------------------------------------------ determinism

void expect_identical(const harness::RunMetrics& a,
                      const harness::RunMetrics& b) {
  EXPECT_EQ(a.build_ok, b.build_ok);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.qos_delivered, b.qos_delivered);
  EXPECT_EQ(a.qos_throughput_kbps, b.qos_throughput_kbps);
  EXPECT_EQ(a.avg_delay_ms, b.avg_delay_ms);
  EXPECT_EQ(a.delay_p50_ms, b.delay_p50_ms);
  EXPECT_EQ(a.delay_p95_ms, b.delay_p95_ms);
  EXPECT_EQ(a.delay_p99_ms, b.delay_p99_ms);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.comm_energy_j, b.comm_energy_j);
  EXPECT_EQ(a.construction_energy_j, b.construction_energy_j);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.qos_timeline_kbps, b.qos_timeline_kbps);
  EXPECT_EQ(a.app_loops_started, b.app_loops_started);
  EXPECT_EQ(a.app_loops_completed, b.app_loops_completed);
  EXPECT_EQ(a.app_loops_within_deadline, b.app_loops_within_deadline);
  EXPECT_EQ(a.app_loop_p50_ms, b.app_loop_p50_ms);
  EXPECT_EQ(a.app_loop_p95_ms, b.app_loop_p95_ms);
  EXPECT_EQ(a.app_loop_p99_ms, b.app_loop_p99_ms);
  EXPECT_EQ(a.app_loop_completion_ratio, b.app_loop_completion_ratio);
  EXPECT_EQ(a.app_actuator_availability, b.app_actuator_availability);
  EXPECT_EQ(a.app_recoveries, b.app_recoveries);
  EXPECT_EQ(a.app_mean_recovery_s, b.app_mean_recovery_s);
  ASSERT_EQ(a.observability.size(), b.observability.size());
  for (std::size_t i = 0; i < a.observability.size(); ++i) {
    const auto& ea = a.observability[i];
    const auto& eb = b.observability[i];
    EXPECT_EQ(ea.name, eb.name);
    EXPECT_EQ(ea.is_histogram, eb.is_histogram);
    EXPECT_EQ(ea.count, eb.count) << ea.name;
    EXPECT_EQ(ea.sum, eb.sum) << ea.name;
    EXPECT_EQ(ea.min, eb.min) << ea.name;
    EXPECT_EQ(ea.max, eb.max) << ea.name;
    EXPECT_EQ(ea.p50, eb.p50) << ea.name;
    EXPECT_EQ(ea.p95, eb.p95) << ea.name;
    EXPECT_EQ(ea.p99, eb.p99) << ea.name;
  }
}

TEST(FuzzDeterminism, ReplayingASeedIsFieldForFieldIdentical) {
  for (const std::uint64_t seed : {5ULL, 11ULL}) {
    harness::Scenario sc = ScenarioFuzzer::generate(seed);
    // The kernel profiler histograms are wall-time (the one intentional
    // nondeterminism in the observability snapshot); everything else
    // must match exactly.
    sc.profile = false;
    const harness::RunMetrics a =
        harness::run_once(harness::SystemKind::kRefer, sc);
    const harness::RunMetrics b =
        harness::run_once(harness::SystemKind::kRefer, sc);
    expect_identical(a, b);
  }
}

// -------------------------------------------------------------- repro.json

TEST(Repro, RoundTripsEveryScenarioField) {
  ReproCase repro;
  repro.kind = harness::SystemKind::kDDear;
  repro.violation = "energy.conservation: off by 0.25 J";
  harness::Scenario& sc = repro.scenario;
  sc = ScenarioFuzzer::generate(99);
  sc.seed = (1ULL << 63) + 12345;  // needs string serialization: > 2^53
  sc.loss_probability = 0.07421875;
  sc.planted_bug = 1;
  sc.packet_bytes = 3999;

  const std::string path = temp_path("verify_roundtrip.json");
  ASSERT_TRUE(write_repro(path, repro));
  const auto loaded = load_repro(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->kind, repro.kind);
  EXPECT_EQ(loaded->violation, repro.violation);
  EXPECT_EQ(loaded->scenario.seed, sc.seed);
  // One string comparison covers every serialized field exactly.
  EXPECT_EQ(to_repro_json(*loaded), to_repro_json(repro));
  std::remove(path.c_str());
}

TEST(Repro, StillLoadsVersion2FilesWithAppDefaults) {
  // A current document with every app_* key (and the other post-v2
  // fields) stripped and the version stamped back to 2 -- exactly what a
  // pre-app-layer fuzzer wrote.  It must load, with the app knobs at
  // their Scenario defaults (app off).
  ReproCase repro;
  repro.kind = harness::SystemKind::kRefer;
  repro.scenario = ScenarioFuzzer::generate(7);
  repro.scenario.app_enabled = false;
  std::string doc = to_repro_json(repro);
  const auto replace = [&doc](const std::string& from,
                              const std::string& to) {
    const std::size_t at = doc.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
  };
  replace("\"repro_version\":4", "\"repro_version\":2");
  replace("\"routing_policy\":\"greedy\",", "");
  const std::size_t app_from = doc.find("\"app_enabled\"");
  const std::size_t app_to = doc.find("\"seed\"");
  ASSERT_NE(app_from, std::string::npos);
  ASSERT_NE(app_to, std::string::npos);
  ASSERT_LT(app_from, app_to);
  doc.erase(app_from, app_to - app_from);

  const std::string path = temp_path("verify_v2_compat.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(doc.c_str(), f);
  std::fclose(f);
  const auto loaded = load_repro(path);
  ASSERT_TRUE(loaded.has_value()) << doc;
  const harness::Scenario defaults;
  EXPECT_FALSE(loaded->scenario.app_enabled);
  EXPECT_EQ(loaded->scenario.app_event_period_s,
            defaults.app_event_period_s);
  EXPECT_EQ(loaded->scenario.app_keepalive_miss_limit,
            defaults.app_keepalive_miss_limit);
  EXPECT_TRUE(loaded->scenario.app_fault_schedule.empty());
  // Every non-app field survived the round trip.
  EXPECT_EQ(loaded->scenario.seed, repro.scenario.seed);
  EXPECT_EQ(loaded->scenario.n_sensors, repro.scenario.n_sensors);
  EXPECT_EQ(loaded->scenario.measure_s, repro.scenario.measure_s);
  std::remove(path.c_str());
}

TEST(Repro, RejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(load_repro(temp_path("verify_nonexistent.json")).has_value());
  const std::string path = temp_path("verify_bad.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"repro_version\": 1}\n", f);  // missing everything else
  std::fclose(f);
  EXPECT_FALSE(load_repro(path).has_value());
  std::remove(path.c_str());
}

// ----------------------------------------- planted bug -> shrink -> replay

TEST(PlantedBug, IsCaughtShrunkAndReplayedFromRepro) {
  // 1. Fuzz with the planted off-by-one in the Theorem 3.8 fail-over
  // nominal length; the trace audit must flag it on some seed.
  FuzzOptions options;
  options.seeds = 12;
  options.base_seed = 1;
  options.jobs = 2;
  options.planted_bug = 1;
  options.trace_dir = temp_path("verify_plant");
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_EQ(summary.cases_run, 12);
  ASSERT_FALSE(summary.failures.empty())
      << "the planted bug escaped " << summary.cases_run << " fuzz cases";
  const FuzzFailure& first = summary.failures.front();
  bool flagged = false;
  for (const Violation& v : first.violations) {
    flagged |= v.check == "trace.failover_mismatches";
  }
  EXPECT_TRUE(flagged) << "expected the fail-over audit to flag the plant";

  // 2. Shrink to a minimal reproducer; it must still raise the same
  // check, with fewer nodes / a shorter horizon than where it started.
  ScenarioShrinker::Options shrink_options;
  shrink_options.max_runs = 32;
  shrink_options.trace_path = temp_path("verify_plant_shrink.jsonl");
  const ScenarioShrinker::Result shrunk =
      ScenarioShrinker::shrink(first.scenario, first.violations,
                               shrink_options);
  EXPECT_GT(shrunk.accepted, 0) << "nothing could be reduced";
  EXPECT_LE(shrunk.scenario.n_sensors, first.scenario.n_sensors);
  EXPECT_LE(shrunk.scenario.measure_s, first.scenario.measure_s);
  ASSERT_FALSE(shrunk.violations.empty());

  // 3. Write repro.json, load it back, and replay: bit-identical runs
  // mean the identical violation set, field for field.
  ReproCase repro;
  repro.kind = harness::SystemKind::kRefer;
  repro.scenario = shrunk.scenario;
  repro.scenario.trace_path.clear();
  repro.violation = summarize(shrunk.violations);
  const std::string repro_path = temp_path("verify_plant_repro.json");
  ASSERT_TRUE(write_repro(repro_path, repro));
  const auto loaded = load_repro(repro_path);
  ASSERT_TRUE(loaded.has_value());

  const std::vector<Violation> replayed = run_case(
      loaded->kind, loaded->scenario, shrink_options.trace_path);
  ASSERT_EQ(replayed.size(), shrunk.violations.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].check, shrunk.violations[i].check);
    EXPECT_EQ(replayed[i].detail, shrunk.violations[i].detail);
  }

  std::remove(repro_path.c_str());
  std::remove(shrink_options.trace_path.c_str());
  for (const FuzzFailure& f : summary.failures) {
    std::remove(f.trace_path.c_str());
  }
}

// ------------------------------------------------------------ fuzz driver

TEST(FuzzDriver, CleanSeedsProduceNoViolationsAndNoLeftoverTraces) {
  FuzzOptions options;
  options.seeds = 6;
  options.base_seed = 21;
  options.jobs = 2;
  options.trace_dir = temp_path("verify_fuzz_clean");
  const FuzzSummary summary = run_fuzz(options);
  EXPECT_EQ(summary.cases_run, 6);
  EXPECT_TRUE(summary.clean())
      << summary.failures.size() << " failing case(s); first seed "
      << summary.failures.front().seed << ": "
      << summarize(summary.failures.front().violations);
  // Clean cases delete their traces.
  for (int i = 0; i < 6; ++i) {
    const std::string trace =
        options.trace_dir + "/fuzz_" + std::to_string(21 + i) + ".jsonl";
    std::FILE* f = std::fopen(trace.c_str(), "r");
    EXPECT_EQ(f, nullptr) << trace << " should have been deleted";
    if (f) std::fclose(f);
  }
}

}  // namespace
}  // namespace refer::verify
