// trace_report: offline analyzer for referbench JSONL traces.
//
//   trace_report [--degree D] [--chains N] [--strict] <trace.jsonl>...
//
// Prints, per trace file: event counts, per-packet delivery accounting,
// the drop-reason breakdown, the Theorem 3.8 fail-over audit (every
// alternate-successor switch re-derived via kautz::disjoint_routes) and
// the hop-chain continuity check, plus the first few fail-over chains.
//
// Traces from regular-policy runs (trace_header policy="regular") get a
// fourth audit: every non-fail-over hop replayed against the re-derived
// Faber-Streib concatenation walk (kautz/regular.hpp).
//
// Exit status: 0 clean, 1 when --strict and any audit found a violation
// (parse/schema errors, route mismatches, path-length, chain/arc or
// regular-walk violations), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/trace_report.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_report [--degree D] [--chains N] [--strict] "
      "<trace.jsonl>...\n"
      "  --degree D   Kautz degree for the Theorem 3.8 audit "
      "(default: trace header, else infer)\n"
      "  --chains N   fail-over hop chains to print per file "
      "(default: 3)\n"
      "  --strict     exit 1 when any audit finds a violation\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  refer::analysis::TraceReportOptions opts;
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--degree" && i + 1 < argc) {
      opts.degree = std::atoi(argv[++i]);
      if (opts.degree < 2) return usage();
    } else if (arg == "--chains" && i + 1 < argc) {
      opts.max_chains = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  std::uint64_t total_violations = 0;
  for (const std::string& file : files) {
    std::printf("== %s ==\n", file.c_str());
    const refer::analysis::TraceReport report =
        refer::analysis::analyze_trace_file(file, opts);
    if (report.lines == 0 && report.parse_errors > 0) {
      std::fprintf(stderr, "trace_report: cannot read %s\n", file.c_str());
      total_violations += 1;
      continue;
    }
    refer::analysis::print_report(report, opts, stdout);
    total_violations += report.violations();
  }
  if (total_violations > 0) {
    std::fprintf(stderr, "trace_report: %llu total violations\n",
                 static_cast<unsigned long long>(total_violations));
    if (strict) return 1;
  }
  return 0;
}
