#include "verify_commands.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "verify/fuzzer.hpp"
#include "verify/repro.hpp"
#include "verify/shrink.hpp"

namespace refer::tools {

namespace {

using namespace refer::verify;

void print_fuzz_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: referbench fuzz [flags]\n"
      "\n"
      "  --seeds N      fuzz cases to run (default 25)\n"
      "  --seed S       first fuzz seed (default 1)\n"
      "  --budget-s S   stop launching new waves after S seconds\n"
      "  --jobs N       parallel jobs; 0 = one per core (default 1)\n"
      "  --plant K      plant known bug K (testing the checker itself)\n"
      "  --app-faults   force the closed-loop app layer (with actuator\n"
      "                 fault schedules) on in every case\n"
      "  --dir PATH     trace directory (default: <tmp>/refer_fuzz)\n"
      "  --repro PATH   where the shrunk reproducer goes (default\n"
      "                 repro.json); written only when a case fails\n"
      "  --no-shrink    skip shrinking, write the raw failing case\n"
      "\n"
      "exit: 0 all cases clean, 1 violations found, 2 usage error\n");
}

/// Strict flag parsing, same contract as bench_common.hpp: unknown flag
/// or missing value prints usage and exits 2.
struct FuzzArgs {
  FuzzOptions options;
  std::string repro_path = "repro.json";
  bool shrink = true;
};

FuzzArgs parse_fuzz_args(int argc, char** argv) {
  FuzzArgs args;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "referbench fuzz: %s needs a value\n", argv[i]);
      print_fuzz_usage(stderr);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      print_fuzz_usage(stdout);
      std::exit(0);
    } else if (flag == "--seeds") {
      args.options.seeds = std::atoi(need_value(i++));
    } else if (flag == "--seed") {
      args.options.base_seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (flag == "--budget-s") {
      args.options.budget_s = std::atof(need_value(i++));
    } else if (flag == "--jobs") {
      args.options.jobs = std::atoi(need_value(i++));
    } else if (flag == "--plant") {
      args.options.planted_bug = std::atoi(need_value(i++));
    } else if (flag == "--app-faults") {
      args.options.force_app = true;
    } else if (flag == "--dir") {
      args.options.trace_dir = need_value(i++);
    } else if (flag == "--repro") {
      args.repro_path = need_value(i++);
    } else if (flag == "--no-shrink") {
      args.shrink = false;
    } else {
      std::fprintf(stderr, "referbench fuzz: unknown flag '%s'\n",
                   flag.c_str());
      print_fuzz_usage(stderr);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int run_fuzz_command(int argc, char** argv) {
  const FuzzArgs args = parse_fuzz_args(argc, argv);
  std::printf("fuzzing %d scenario(s) from seed %" PRIu64 " (%s)...\n",
              args.options.seeds, args.options.base_seed,
              args.options.planted_bug
                  ? "with a planted bug -- violations expected"
                  : "all invariants must hold");
  const FuzzSummary summary =
      run_fuzz(args.options, [](int done, int total) {
        std::printf("  %d/%d cases\r", done, total);
        std::fflush(stdout);
      });
  std::printf("\n");
  if (summary.cases_run < summary.cases_requested) {
    std::printf("budget hit: ran %d of %d cases\n", summary.cases_run,
                summary.cases_requested);
  }
  if (summary.builds_failed > 0) {
    std::printf("note: %d case(s) failed topology construction (a legal "
                "outcome; their invariants were still checked)\n",
                summary.builds_failed);
  }
  if (summary.clean()) {
    std::printf("OK: %d case(s), zero invariant violations\n",
                summary.cases_run);
    return 0;
  }

  std::printf("%zu failing case(s):\n", summary.failures.size());
  for (const FuzzFailure& f : summary.failures) {
    std::printf("seed %" PRIu64 " (trace kept at %s):\n", f.seed,
                f.trace_path.c_str());
    print_violations(f.violations, stdout);
  }

  const FuzzFailure& first = summary.failures.front();
  ReproCase repro;
  repro.kind = harness::SystemKind::kRefer;
  repro.scenario = first.scenario;
  repro.violation = summarize(first.violations);
  if (args.shrink) {
    ScenarioShrinker::Options shrink_opts;
    shrink_opts.trace_path = first.trace_path + ".shrink";
    std::printf("shrinking seed %" PRIu64 "...\n", first.seed);
    const ScenarioShrinker::Result shrunk =
        ScenarioShrinker::shrink(first.scenario, first.violations,
                                 shrink_opts);
    std::printf("  %d reduction(s) held over %d run(s): %d sensors, "
                "%.0f s horizon, %d faults/period\n",
                shrunk.accepted, shrunk.runs, shrunk.scenario.n_sensors,
                shrunk.scenario.measure_s, shrunk.scenario.faulty_nodes);
    std::remove(shrink_opts.trace_path.c_str());
    repro.scenario = shrunk.scenario;
    repro.violation = summarize(shrunk.violations);
  }
  repro.scenario.trace_path.clear();
  repro.scenario.trace_dir.clear();
  if (write_repro(args.repro_path, repro)) {
    std::printf("reproducer written to %s (run: referbench replay %s)\n",
                args.repro_path.c_str(), args.repro_path.c_str());
  } else {
    std::fprintf(stderr, "referbench fuzz: cannot write %s\n",
                 args.repro_path.c_str());
  }
  return 1;
}

int run_replay_command(int argc, char** argv) {
  if (argc < 1 || argv[0][0] == '-') {
    std::fprintf(stderr,
                 "usage: referbench replay <repro.json>\n"
                 "\n"
                 "re-executes a fuzzer reproducer bit-identically and\n"
                 "re-checks every invariant.\n"
                 "exit: 0 clean, 1 violations reproduced, 2 usage error\n");
    return argc >= 1 && (std::strcmp(argv[0], "--help") == 0 ||
                         std::strcmp(argv[0], "-h") == 0)
               ? 0
               : 2;
  }
  const std::string path = argv[0];
  const auto repro = load_repro(path);
  if (!repro) return 2;
  if (!repro->violation.empty()) {
    std::printf("expecting: %s\n", repro->violation.c_str());
  }
  const std::string trace_path = path + ".trace.jsonl";
  const std::vector<Violation> violations =
      run_case(repro->kind, repro->scenario, trace_path);
  if (violations.empty()) {
    std::printf("clean: no invariant violations (trace at %s)\n",
                trace_path.c_str());
    return 0;
  }
  std::printf("reproduced %zu violation(s) (trace at %s):\n",
              violations.size(), trace_path.c_str());
  print_violations(violations, stdout);
  return 1;
}

}  // namespace refer::tools
