// referbench: the unified CLI for every figure/ablation reproduction.
//
//   referbench --list                      enumerate registered benches
//   referbench fig04 --jobs 8 --json out.json
//   referbench all --quick                 run everything (CI smoke)
//
// Replaces the previous one-binary-per-figure layout: benches register
// with bench/registry.hpp, flags are parsed once
// (bench/bench_common.hpp, strict: unknown flag / missing value exit 2),
// simulations run on the runner::ParallelExecutor, and --json exports a
// versioned results document via runner::ResultsWriter.
#include <cstdio>
#include <string>
#include <vector>

#include "registry.hpp"
#include "verify_commands.hpp"

namespace {

using namespace refer::bench;

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: referbench <bench|all|fuzz|replay|--list> [flags]\n"
               "\n"
               "  fuzz            scenario fuzzing under the invariant\n"
               "                  engine (referbench fuzz --help)\n"
               "  replay FILE     re-run a fuzzer reproducer (repro.json)\n"
               "\n"
               "  --list          list registered benches\n"
               "  --reps N        seeds per point (default 3)\n"
               "  --measure S     measurement window, seconds (default 60)\n"
               "  --pps P         packets per second per source (default 10)\n"
               "  --bytes B       packet size in bytes (default 2500)\n"
               "  --seed S        base scenario seed (default 1)\n"
               "  --jobs N        parallel jobs; 0 = one per core (default 1)\n"
               "  --csv PREFIX    also write PREFIX_<metric>.csv\n"
               "  --json PATH     write a structured results document\n"
               "  --trace DIR     write per-job JSONL traces to DIR/<bench>/\n"
               "  --profile       kernel profiler (per-event-tag wall-time)\n"
               "  --timeline S    flight-recorder timeseries, bucket width S\n"
               "                  seconds (analyze with timeline_report)\n"
               "  --phase-profile wall-clock phase attribution per bucket\n"
               "  --no-spatial-index  O(n) world scans instead of the grid\n"
               "  --no-neighbor-cache  re-walk the grid per reachable query\n"
               "                  instead of reusing cached neighbor rows\n"
               "  --legacy-event-queue  binary-heap kernel instead of the\n"
               "                  calendar queue\n"
               "  --routing-policy greedy|regular  REFER intra-cell routing\n"
               "                  (default greedy shortest paths; regular =\n"
               "                  all-to-all walks, Theorem 3.8 fail-over)\n"
               "  --quick         reps=1, measure=45 (smoke runs)\n"
               "  --full          reps=5, measure=200 (paper-closer scale)\n");
}

void print_list() {
  for (const BenchInfo& info : sorted_registry()) {
    std::printf("%-20s %s\n", info.name, info.description);
  }
}

/// out.json -> out_fig04.json when several benches share one --json flag.
std::string json_path_for(const std::string& base, const std::string& name,
                          bool single) {
  if (single) return base;
  const std::size_t dot = base.rfind('.');
  if (dot == std::string::npos || base.find('/', dot) != std::string::npos) {
    return base + "_" + name;
  }
  return base.substr(0, dot) + "_" + name + base.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(stderr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    print_usage(stdout);
    return 0;
  }
  if (command == "--list" || command == "list") {
    print_list();
    return 0;
  }
  if (command == "fuzz") {
    return refer::tools::run_fuzz_command(argc - 2, argv + 2);
  }
  if (command == "replay") {
    return refer::tools::run_replay_command(argc - 2, argv + 2);
  }
  if (!command.empty() && command[0] == '-') {
    std::fprintf(stderr, "referbench: expected a bench name before flags, "
                         "got '%s' (try 'referbench --list')\n",
                 command.c_str());
    return 2;
  }

  // argv[1] is the bench name; parse_options skips argv[0] of the slice.
  const BenchOptions opt = parse_options(argc - 1, argv + 1);

  std::vector<BenchInfo> selected;
  if (command == "all") {
    selected = sorted_registry();
  } else {
    const BenchInfo* info = find_bench(command);
    if (!info) {
      std::fprintf(stderr, "referbench: unknown bench '%s'; available:\n",
                   command.c_str());
      print_list();
      return 2;
    }
    selected.push_back(*info);
  }

  int rc = 0;
  for (const BenchInfo& info : selected) {
    Context ctx(opt, info.name);
    const int bench_rc = info.fn(ctx);
    if (bench_rc != 0) rc = bench_rc;
    if (!opt.json_path.empty()) {
      ctx.results.add_records(ctx.executor.records());
      ctx.results.set_wall_s(ctx.executor.wall_s());
      const std::string path =
          json_path_for(opt.json_path, info.name, selected.size() == 1);
      if (ctx.results.write(path)) {
        std::printf("(json written to %s)\n", path.c_str());
      } else {
        std::fprintf(stderr, "referbench: cannot write %s\n", path.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}
