// The verification subcommands of referbench (src/verify drivers):
//
//   referbench fuzz --seeds 100 --jobs 0        scenario fuzzing
//   referbench replay repro.json                re-run a reproducer
//
// Split from referbench_main.cpp so the bench registry stays free of
// verification concerns.  Both return a process exit code: 0 = clean,
// 1 = invariant violations found, 2 = usage error.
#pragma once

namespace refer::tools {

/// `argv` starts at the first flag after the `fuzz` word.
int run_fuzz_command(int argc, char** argv);

/// `argv` starts at the repro.json path after the `replay` word.
int run_replay_command(int argc, char** argv);

}  // namespace refer::tools
