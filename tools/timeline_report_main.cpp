// timeline_report: offline analyzer for referbench results documents.
//
//   timeline_report [--strict] [--dip-frac F] <results.json>...
//
// Reads the flight-recorder timeseries out of each schema v3/v4 results
// JSON (runner/results_writer) and reports, per job: the warmup ramp,
// saturation knees (throughput plateaus while the MAC queue wait keeps
// growing), and recovery dips (throughput or app-loop completion
// falling below a fraction of the steady-state median -- the signature
// of a fault window, e.g. the scripted "0@30+12" actuator break).
//
// Exit status: 0 clean, 1 when --strict and any anomaly was found,
// 2 on usage / unreadable or malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/timeline_report.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: timeline_report [--strict] [--dip-frac F] <results.json>...\n"
      "  --strict      exit 1 when any anomaly (knee or dip) is found\n"
      "  --dip-frac F  dip threshold as a fraction of the steady median "
      "(default: 0.7)\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  refer::analysis::ReportOptions opts;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      opts.strict = true;
    } else if (arg == "--dip-frac" && i + 1 < argc) {
      opts.dip_frac = std::atof(argv[++i]);
      if (!(opts.dip_frac > 0 && opts.dip_frac < 1)) return usage();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  int exit_code = 0;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "timeline_report: cannot read %s\n", path.c_str());
      return 2;
    }
    const auto doc = refer::analysis::load_timeline_doc(text);
    if (!doc) {
      std::fprintf(stderr,
                   "timeline_report: %s is not a schema v3+ results "
                   "document\n",
                   path.c_str());
      return 2;
    }
    if (files.size() > 1) std::printf("== %s ==\n", path.c_str());
    const refer::analysis::TimelineReport report =
        refer::analysis::analyze_timelines(*doc, opts);
    exit_code = std::max(
        exit_code,
        refer::analysis::print_timeline_report(stdout, *doc, report, opts));
  }
  return exit_code;
}
