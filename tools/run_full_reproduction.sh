#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every figure at
# paper-closer scale (--full: 5 seeds, 200 s windows), export CSVs and
# render SVG plots.  Expect ~30-60 min of wall clock.
#
#   tools/run_full_reproduction.sh [outdir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-reproduction_out}"
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee "$OUT/tests.txt"

for b in build/bench/fig*; do
  name=$(basename "$b")
  echo "== $name"
  "$b" --full --csv "$OUT/$name" | tee "$OUT/$name.txt"
done
for b in ablation_failover ablation_dk ablation_topology ablation_lifetime \
         ablation_sparse ablation_mac micro_routing_bench; do
  echo "== $b"
  "build/bench/$b" | tee "$OUT/$b.txt"
done

if command -v python3 >/dev/null; then
  python3 tools/plot_figures.py "$OUT"/*.csv || true
fi
echo "artifacts in $OUT/"
