#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every figure at
# paper-closer scale (--full: 5 seeds, 200 s windows), export CSVs +
# structured JSON results and render SVG plots.
# Expect ~30-60 min of wall clock serial; pass --jobs to referbench via
# JOBS=N to parallelise across cores (bit-identical results).
#
#   tools/run_full_reproduction.sh [outdir]
#   JOBS=8 tools/run_full_reproduction.sh
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-reproduction_out}"
JOBS="${JOBS:-0}"   # 0 = one worker per core
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee "$OUT/tests.txt"

REFERBENCH=build/bench/referbench
for name in fig04 fig05 fig06 fig07 fig08 fig09 fig10 fig11; do
  echo "== $name"
  "$REFERBENCH" "$name" --full --jobs "$JOBS" --csv "$OUT/$name" \
    --json "$OUT/$name.json" | tee "$OUT/$name.txt"
done
for name in ablation_failover ablation_dk ablation_topology \
            ablation_lifetime ablation_sparse ablation_mac \
            ablation_timeline; do
  echo "== $name"
  "$REFERBENCH" "$name" --jobs "$JOBS" --json "$OUT/$name.json" \
    | tee "$OUT/$name.txt"
done
echo "== micro_routing_bench"
build/bench/micro_routing_bench | tee "$OUT/micro_routing_bench.txt"

if command -v python3 >/dev/null; then
  python3 tools/plot_figures.py "$OUT"/*.csv || true
fi
echo "artifacts in $OUT/"
