#!/usr/bin/env python3
"""Render the benchmark CSVs (bench --csv PREFIX) and the schema-v4
flight-recorder timeseries (bench --timeline S --json PATH) as standalone
SVG line charts -- no third-party dependencies, just the Python standard
library.

Usage:
    ./build/bench/referbench fig04 --csv out/fig
    tools/plot_figures.py out/fig_fig04.csv          # -> out/fig_fig04.svg
    tools/plot_figures.py out/*.csv

    ./build/bench/referbench fig_app --timeline 5 --json out/app.json
    tools/plot_figures.py out/app.json   # -> out/app_timeline_<metric>.svg
"""

import csv
import json
import math
import pathlib
import sys

WIDTH, HEIGHT = 720, 440
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 170, 30, 50
COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b", "#e377c2"]


def nice_ticks(lo, hi, n=5):
    if hi <= lo:
        hi = lo + 1
    raw = (hi - lo) / n
    mag = 10 ** math.floor(math.log10(raw))
    step = min(s * mag for s in (1, 2, 5, 10) if s * mag >= raw)
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step / 2:
        ticks.append(t)
        t += step
    return ticks


def fmt(v):
    if abs(v) >= 1e6:
        return f"{v/1e6:g}M"
    if abs(v) >= 1e3:
        return f"{v/1e3:g}k"
    return f"{v:g}"


def plot(path: pathlib.Path) -> pathlib.Path:
    with open(path) as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    x_label = header[0]
    series_names = [h[:-5] for h in header[1:] if h.endswith("_mean")]
    xs = [float(r[0]) for r in data]
    series = {}
    for i, name in enumerate(series_names):
        col = 1 + 2 * i
        series[name] = (
            [float(r[col]) for r in data],       # mean
            [float(r[col + 1]) for r in data],   # ci
        )

    all_vals = [m + c for vals in series.values() for m, c in zip(*vals)]
    all_vals += [max(0.0, m - c) for vals in series.values()
                 for m, c in zip(*vals)]
    y_lo, y_hi = 0.0, max(all_vals) * 1.05 or 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1

    def sx(x):
        return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * (
            WIDTH - MARGIN_L - MARGIN_R)

    def sy(y):
        return HEIGHT - MARGIN_B - (y - y_lo) / (y_hi - y_lo) * (
            HEIGHT - MARGIN_T - MARGIN_B)

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
    ]
    # Axes + grid.
    for t in nice_ticks(y_lo, y_hi):
        y = sy(t)
        out.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
                   f'x2="{WIDTH-MARGIN_R}" y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{MARGIN_L-6}" y="{y+4:.1f}" '
                   f'text-anchor="end">{fmt(t)}</text>')
    for t in nice_ticks(x_lo, x_hi):
        if t < x_lo - 1e-9 or t > x_hi + 1e-9:
            continue
        x = sx(t)
        out.append(f'<text x="{x:.1f}" y="{HEIGHT-MARGIN_B+18}" '
                   f'text-anchor="middle">{fmt(t)}</text>')
    out.append(f'<line x1="{MARGIN_L}" y1="{sy(y_lo):.1f}" '
               f'x2="{WIDTH-MARGIN_R}" y2="{sy(y_lo):.1f}" stroke="#333"/>')
    out.append(f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" '
               f'x2="{MARGIN_L}" y2="{sy(y_lo):.1f}" stroke="#333"/>')
    out.append(f'<text x="{(MARGIN_L+WIDTH-MARGIN_R)/2}" '
               f'y="{HEIGHT-10}" text-anchor="middle">{x_label}</text>')

    # Series: CI band (vertical whiskers) + line + markers + legend.
    for i, (name, (means, cis)) in enumerate(series.items()):
        color = COLORS[i % len(COLORS)]
        pts = " ".join(f"{sx(x):.1f},{sy(m):.1f}" for x, m in zip(xs, means))
        for x, m, c in zip(xs, means, cis):
            if c > 0:
                out.append(
                    f'<line x1="{sx(x):.1f}" y1="{sy(max(y_lo, m-c)):.1f}" '
                    f'x2="{sx(x):.1f}" y2="{sy(min(y_hi, m+c)):.1f}" '
                    f'stroke="{color}" stroke-opacity="0.4" '
                    f'stroke-width="3"/>')
        out.append(f'<polyline points="{pts}" fill="none" '
                   f'stroke="{color}" stroke-width="2"/>')
        for x, m in zip(xs, means):
            out.append(f'<circle cx="{sx(x):.1f}" cy="{sy(m):.1f}" r="3.5" '
                       f'fill="{color}"/>')
        ly = MARGIN_T + 16 + i * 18
        lx = WIDTH - MARGIN_R + 12
        out.append(f'<line x1="{lx}" y1="{ly-4}" x2="{lx+22}" y2="{ly-4}" '
                   f'stroke="{color}" stroke-width="2"/>')
        out.append(f'<text x="{lx+28}" y="{ly}">{name}</text>')

    out.append("</svg>")
    dest = path.with_suffix(".svg")
    dest.write_text("\n".join(out))
    return dest


# Per-bucket series plotted from a v4 results document, with y-axis
# labels.  qos_kbps also exists on v3 documents via the scenario bucket.
TIMESERIES_METRICS = [
    ("qos_kbps", "QoS throughput (kbit/s)"),
    ("delivery_ratio", "delivery ratio"),
    ("queue_wait_mean_us", "mean MAC queue wait (us)"),
    ("channel_busy_fraction", "channel busy fraction"),
    ("energy_rate_w", "energy drain rate (W)"),
]
MAX_TIMELINE_SERIES = 8


def render_lines(dest: pathlib.Path, x_label, y_label, series):
    """Plain multi-line chart: series = {name: (xs, ys)}."""
    all_y = [y for xs, ys in series.values() for y in ys]
    all_x = [x for xs, ys in series.values() for x in xs]
    y_lo, y_hi = 0.0, (max(all_y) * 1.05 if all_y and max(all_y) > 0 else 1.0)
    x_lo, x_hi = min(all_x), max(all_x)
    if x_hi == x_lo:
        x_hi = x_lo + 1

    def sx(x):
        return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * (
            WIDTH - MARGIN_L - MARGIN_R)

    def sy(y):
        return HEIGHT - MARGIN_B - (y - y_lo) / (y_hi - y_lo) * (
            HEIGHT - MARGIN_T - MARGIN_B)

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
    ]
    for t in nice_ticks(y_lo, y_hi):
        y = sy(t)
        out.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
                   f'x2="{WIDTH-MARGIN_R}" y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{MARGIN_L-6}" y="{y+4:.1f}" '
                   f'text-anchor="end">{fmt(t)}</text>')
    for t in nice_ticks(x_lo, x_hi):
        if t < x_lo - 1e-9 or t > x_hi + 1e-9:
            continue
        out.append(f'<text x="{sx(t):.1f}" y="{HEIGHT-MARGIN_B+18}" '
                   f'text-anchor="middle">{fmt(t)}</text>')
    out.append(f'<line x1="{MARGIN_L}" y1="{sy(y_lo):.1f}" '
               f'x2="{WIDTH-MARGIN_R}" y2="{sy(y_lo):.1f}" stroke="#333"/>')
    out.append(f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" '
               f'x2="{MARGIN_L}" y2="{sy(y_lo):.1f}" stroke="#333"/>')
    out.append(f'<text x="{(MARGIN_L+WIDTH-MARGIN_R)/2}" '
               f'y="{HEIGHT-10}" text-anchor="middle">{x_label}</text>')
    out.append(f'<text x="16" y="{MARGIN_T-10}">{y_label}</text>')

    for i, (name, (xs, ys)) in enumerate(series.items()):
        color = COLORS[i % len(COLORS)]
        pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
        out.append(f'<polyline points="{pts}" fill="none" '
                   f'stroke="{color}" stroke-width="2"/>')
        ly = MARGIN_T + 16 + i * 18
        lx = WIDTH - MARGIN_R + 12
        out.append(f'<line x1="{lx}" y1="{ly-4}" x2="{lx+22}" y2="{ly-4}" '
                   f'stroke="{color}" stroke-width="2"/>')
        out.append(f'<text x="{lx+28}" y="{ly}">{name}</text>')

    out.append("</svg>")
    dest.write_text("\n".join(out))
    return dest


def plot_timeseries(path: pathlib.Path):
    """One SVG per TIMESERIES_METRICS entry from a results JSON (v4
    `timeseries` section; v3 qos_timeline_kbps plots throughput only)."""
    doc = json.loads(path.read_text())
    jobs = doc.get("jobs_run", [])
    scenario_bucket = doc.get("scenario", {}).get("timeline_bucket_s", 0)
    outs, skipped = [], 0
    for key, y_label in TIMESERIES_METRICS:
        series = {}
        for job in jobs:
            if job.get("rep", 0) != 0:
                continue  # one rep per (system, x): reps are re-seeds
            metrics = job.get("metrics", {})
            ts = metrics.get("timeseries")
            if ts is not None and key in ts:
                ys, bucket, t0 = ts[key], ts["bucket_s"], ts["start_s"]
            elif key == "qos_kbps" and metrics.get("qos_timeline_kbps"):
                ys, bucket, t0 = (metrics["qos_timeline_kbps"],
                                  scenario_bucket, 0.0)  # v3 back-compat
            else:
                continue
            if not ys or not bucket:
                continue
            if len(series) >= MAX_TIMELINE_SERIES:
                skipped += 1
                continue
            xs = [t0 + (i + 1) * bucket for i in range(len(ys))]
            series[f'{job.get("system", "?")} x={job.get("x", 0):g}'] = (
                xs, ys)
        if series:
            outs.append(render_lines(
                path.with_name(f"{path.stem}_timeline_{key}.svg"),
                "t (s)", y_label, series))
    if skipped:
        print(f"  (legend capped at {MAX_TIMELINE_SERIES} series per "
              f"chart; {skipped} job/metric lines dropped)")
    return outs


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    for arg in argv[1:]:
        path = pathlib.Path(arg)
        if not path.exists():
            print(f"skip (missing): {path}")
            continue
        if path.suffix == ".json":
            dests = plot_timeseries(path)
            if dests:
                for dest in dests:
                    print(f"{path} -> {dest}")
            else:
                print(f"skip (no timeseries in document): {path}")
            continue
        print(f"{path} -> {plot(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
