// wsan_sim: command-line driver for the experiment harness.
//
//   $ ./wsan_sim --system refer --speed 3 --faulty 6 --measure 120
//   $ ./wsan_sim --system all --sensors 300 --static
//   $ ./wsan_sim --trace run.jsonl   # per-frame JSONL event trace
//
// Runs one scenario and prints the full metric set (throughput, delay
// mean/percentiles, delivery, energy split) -- the quickest way to poke
// at a configuration without writing code.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

using namespace refer;
using harness::Scenario;
using harness::SystemKind;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --system NAME   refer|datree|ddear|kautz-overlay|all "
               "(default refer)\n"
               "  --sensors N     sensor population         (default 200)\n"
               "  --actuators N   actuator population       (default 5)\n"
               "  --speed V       max waypoint speed, m/s   (default 3)\n"
               "  --static        disable mobility\n"
               "  --faulty N      faulty sensors per period (default 0)\n"
               "  --pps P         packets/s per source      (default 10)\n"
               "  --bytes B       payload bytes             (default 2500)\n"
               "  --measure S     measurement window, s     (default 60)\n"
               "  --seed S        RNG seed                  (default 1)\n"
               "  --trace FILE    write per-frame JSONL event trace\n",
               argv0);
}

void print_metrics(SystemKind kind, const harness::RunMetrics& m) {
  std::printf("%-14s", harness::to_string(kind));
  if (!m.build_ok) {
    std::printf(" construction FAILED\n");
    return;
  }
  std::printf(
      " sent %-6llu delivered %5.1f%%  qos-tput %8.1f kbit/s  delay "
      "%6.1f ms (p50 %5.1f / p95 %6.1f / p99 %6.1f)  energy comm %9.0f J "
      "+ build %8.0f J\n",
      static_cast<unsigned long long>(m.packets_sent),
      m.delivery_ratio * 100, m.qos_throughput_kbps, m.avg_delay_ms,
      m.delay_p50_ms, m.delay_p95_ms, m.delay_p99_ms, m.comm_energy_j,
      m.construction_energy_j);
}

}  // namespace

int main(int argc, char** argv) {
  Scenario sc;
  sc.warmup_s = 10;
  sc.measure_s = 60;
  std::string system_name = "refer";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--system") system_name = value();
    else if (arg == "--sensors") sc.n_sensors = std::atoi(value());
    else if (arg == "--actuators") sc.n_actuators = std::atoi(value());
    else if (arg == "--speed") sc.max_speed_mps = std::atof(value());
    else if (arg == "--static") sc.mobile = false;
    else if (arg == "--faulty") sc.faulty_nodes = std::atoi(value());
    else if (arg == "--pps") sc.packets_per_second = std::atof(value());
    else if (arg == "--bytes")
      sc.packet_bytes = static_cast<std::size_t>(std::atoll(value()));
    else if (arg == "--measure") sc.measure_s = std::atof(value());
    else if (arg == "--seed")
      sc.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--trace") sc.trace_path = value();
    else {
      usage(argv[0]);
      return 2;
    }
  }

  std::vector<SystemKind> kinds;
  if (system_name == "refer") kinds = {SystemKind::kRefer};
  else if (system_name == "datree") kinds = {SystemKind::kDaTree};
  else if (system_name == "ddear") kinds = {SystemKind::kDDear};
  else if (system_name == "kautz-overlay") kinds = {SystemKind::kKautzOverlay};
  else if (system_name == "all")
    kinds.assign(std::begin(harness::kAllSystems),
                 std::end(harness::kAllSystems));
  else {
    usage(argv[0]);
    return 2;
  }

  std::printf(
      "scenario: %d sensors, %d actuators, %s, %.1f pkt/s x %zu B per "
      "source, %d faulty, %.0f s window, seed %llu\n\n",
      sc.n_sensors, sc.n_actuators,
      sc.mobile ? "mobile U[0,v]" : "static", sc.packets_per_second,
      sc.packet_bytes, sc.faulty_nodes, sc.measure_s,
      static_cast<unsigned long long>(sc.seed));
  for (SystemKind kind : kinds) {
    print_metrics(kind, harness::run_once(kind, sc));
  }
  return 0;
}
