// Quickstart: build a REFER WSAN and route one sensed event.
//
//   $ ./quickstart
//
// Sets up the paper's default deployment (5 actuators, 200 sensors,
// 500 m x 500 m), runs the Kautz embedding protocol, prints the overlay
// that emerged, and sends a few events from random sensors to their
// nearest actuators.
#include <cstdio>

#include "common/rng.hpp"
#include "refer/system.hpp"

using namespace refer;

int main() {
  // 1. The physical deployment: a simulator, a world, a radio channel.
  sim::Simulator simulator;
  sim::World world({{0, 0}, {500, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(1));

  // Five actuators in a quincunx (paper Figure 1-style: 4 triangle cells)
  for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                        Point{375, 375}, Point{250, 250}}) {
    world.add_actuator(p, /*range=*/250);
  }
  // 200 mobile sensors, random-waypoint speeds U[0,3] m/s.
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    world.add_sensor({rng.uniform(40, 460), rng.uniform(40, 460)},
                     /*range=*/100, /*min_speed=*/0, /*max_speed=*/3,
                     rng.split());
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e6);

  // 2. Build the REFER overlay: Kautz graph embedding + CAN + maintenance.
  core::ReferSystem refer_system(simulator, world, channel, energy, Rng(7));
  bool ok = false;
  refer_system.build([&](bool result) { ok = result; });
  simulator.run_until(30.0);
  if (!ok) {
    std::printf("embedding failed -- deployment too sparse?\n");
    return 1;
  }

  const auto& topology = refer_system.topology();
  std::printf("REFER overlay ready after %.2f simulated seconds\n",
              simulator.now());
  std::printf("  cells: %zu (each an embedded Kautz graph K(2,3))\n",
              topology.cell_count());
  for (core::Cid cid = 0; cid < static_cast<core::Cid>(topology.cell_count());
       ++cid) {
    const auto& cell = topology.cell(cid);
    std::printf("  cell %d @ (%.0f, %.0f): %zu Kautz nodes, complete=%s\n",
                cid, cell.center().x, cell.center().y, cell.size(),
                cell.complete(2) ? "yes" : "no");
  }
  std::printf("  active Kautz sensors: %zu, CAN members: %zu\n",
              topology.active_sensors().size(), topology.can().size());
  std::printf("  construction energy: %.1f J\n\n",
              energy.construction_total());

  // 3. Send events: random sensors report to their nearest actuator.
  Rng pick(99);
  for (int i = 0; i < 5; ++i) {
    const sim::NodeId src = refer_system.random_active_sensor(pick);
    const auto binding = topology.sensor_binding(src);
    refer_system.send_to_actuator(
        src, /*bytes=*/1000, [&, src, binding](const core::DeliveryReport& r) {
          std::printf(
              "event from sensor %-3d %-8s -> %s in %5.1f ms over %d Kautz "
              "hops (%d frames)\n",
              src, binding ? binding->to_string().c_str() : "(n/a)",
              r.delivered ? "actuator" : "DROPPED", r.delay_s * 1000,
              r.kautz_hops, r.physical_hops);
        });
    simulator.run_until(simulator.now() + 1.0);
  }

  // 4. Cross-cell addressing: send to an explicit (CID, KID).
  const core::FullId dst{static_cast<core::Cid>(topology.cell_count() - 1),
                         kautz::Label{1, 0, 1}};
  const sim::NodeId src = refer_system.random_active_sensor(pick);
  refer_system.send_to(src, dst, 1000, [&](const core::DeliveryReport& r) {
    std::printf("cross-cell to %s: %s in %.1f ms\n", dst.to_string().c_str(),
                r.delivered ? "delivered" : "dropped", r.delay_s * 1000);
  });
  simulator.run_until(simulator.now() + 2.0);

  std::printf("\ntotal energy: %.1f J (communication %.1f J)\n",
              energy.grand_total(), energy.communication_total());
  return 0;
}
