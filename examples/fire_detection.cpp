// Fire detection (the paper's motivating application): densely deployed
// smoke detectors report a spreading fire to sprinkler actuators; the
// fire also *destroys* nodes as it spreads, so delivery has to survive
// exactly the failures it reports.
//
//   $ ./fire_detection
//
// A fire front expands from an ignition point; every second, detectors
// inside the front that are still alive report to their nearest
// sprinkler, and nodes the front has swallowed burn out (become faulty).
// The run prints, per second, how many detectors reported, how fast the
// sprinklers heard about it, and how many reports needed REFER's
// fail-over routing around burnt relays.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "refer/coordination.hpp"
#include "refer/system.hpp"

using namespace refer;

int main() {
  sim::Simulator simulator;
  sim::World world({{0, 0}, {500, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(5));

  // Sprinkler actuators on the building grid, smoke detectors everywhere
  // (static: detectors are mounted).
  for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                        Point{375, 375}, Point{250, 250}}) {
    world.add_actuator(p, 250);
  }
  Rng rng(42);
  std::vector<sim::NodeId> detectors;
  for (int i = 0; i < 240; ++i) {
    detectors.push_back(world.add_static_sensor(
        {rng.uniform(20, 480), rng.uniform(20, 480)}, 100));
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e6);

  core::ReferSystem refer_system(simulator, world, channel, energy, Rng(7));
  bool ok = false;
  refer_system.build([&](bool r) { ok = r; });
  simulator.run_until(30.0);
  if (!ok) {
    std::printf("embedding failed\n");
    return 1;
  }
  std::printf("building instrumented: %zu detectors, %zu cells, overlay up\n",
              detectors.size(), refer_system.topology().cell_count());

  // Fire: ignition at (180, 220), front expands at 8 m/s.
  const Point ignition{180, 220};
  const double front_speed = 8.0;
  const double t_ignite = simulator.now();

  int reports = 0, heard = 0, late = 0, lost = 0;
  double worst_ms = 0;

  std::printf("\n%6s %10s %9s %9s %7s %10s\n", "t(s)", "burning", "reports",
              "heard", "lost", "failovers");
  const auto failovers_at_start = refer_system.router().stats().failovers;
  for (int second = 1; second <= 20; ++second) {
    simulator.run_until(t_ignite + second);
    const double radius = front_speed * second;
    int burning = 0;
    for (sim::NodeId d : detectors) {
      const double dist = distance(world.position(d), ignition);
      if (dist > radius) continue;
      ++burning;
      if (!world.alive(d)) continue;
      if (dist < radius - 12) {
        // The front passed over this detector: it burns out.  REFER's
        // maintenance will pull a replacement from the wait pool.
        world.set_alive(d, false);
        continue;
      }
      // Detector at the fire's edge: raise the alarm.
      ++reports;
      refer_system.send_to_actuator(
          d, 500, [&](const core::DeliveryReport& r) {
            if (!r.delivered) {
              ++lost;
              return;
            }
            ++heard;
            const double ms = r.delay_s * 1000;
            if (ms > worst_ms) worst_ms = ms;
            if (r.delay_s > 0.6) ++late;
          });
    }
    simulator.run_until(t_ignite + second + 0.9);
    std::printf("%6d %10d %9d %9d %7d %10llu\n", second, burning, reports,
                heard, lost,
                static_cast<unsigned long long>(
                    refer_system.router().stats().failovers -
                    failovers_at_start));
  }

  // Action coordination (paper SIII-B3): every sprinkler that heard the
  // alarm races to claim the fire through the actuator DHT, so exactly
  // one of them owns the response and the rest stand down.
  core::CoordinationService coordination(simulator, world, channel,
                                         refer_system.topology());
  std::vector<std::pair<sim::NodeId, bool>> outcomes;
  for (sim::NodeId a : world.all_of(sim::NodeKind::kActuator)) {
    coordination.claim(a, "fire-1/handler",
                       "sprinkler-" + std::to_string(a),
                       [&outcomes, a](bool won, std::string winner) {
                         outcomes.emplace_back(a, won);
                         (void)winner;
                       });
    simulator.run_until(simulator.now() + 0.5);
  }
  simulator.run_until(simulator.now() + 2.0);
  int winners = 0;
  sim::NodeId handler = -1;
  for (const auto& [a, won] : outcomes) {
    if (won) {
      ++winners;
      handler = a;
    }
  }
  std::printf("\ncoordination: %d of %zu sprinklers won the claim -> "
              "sprinkler %d handles the fire\n",
              winners, outcomes.size(), handler);

  std::printf("\nfire report summary:\n");
  std::printf("  alarms raised:   %d\n", reports);
  std::printf("  heard by sprinklers: %d (%d lost, %d past QoS deadline)\n",
              heard, lost, late);
  std::printf("  worst response time: %.1f ms\n", worst_ms);
  std::printf("  node replacements while burning: %llu\n",
              static_cast<unsigned long long>(
                  refer_system.maintenance().stats().replacements));
  std::printf("  energy spent: %.1f J\n", energy.grand_total());
  return heard > 0 ? 0 : 1;
}
