// Battlefield target tracking (paper SI): mobile sensors densely
// scattered over terrain detect an intruding target and report sightings
// to the nearest actuator, which "intercepts" once it has heard enough
// recent sightings.  Everything moves: the target, the sensors, and the
// overlay heals itself underneath via node replacement.
//
//   $ ./battlefield_tracking
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "refer/system.hpp"

using namespace refer;

namespace {

/// The intruder: piecewise-linear dash across the field.
Point target_position(double t) {
  // Enters at the west edge, cuts across to the south-east.
  const double speed = 6.0;  // m/s, faster than any sensor
  const Point start{10, 300};
  const Point via{250, 260};
  const Point exit_point{480, 120};
  const double leg1 = distance(start, via) / speed;
  if (t < leg1) {
    const double f = t / leg1;
    return start + (via - start) * f;
  }
  const double leg2 = distance(via, exit_point) / speed;
  const double f = std::min((t - leg1) / leg2, 1.0);
  return via + (exit_point - via) * f;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::World world({{0, 0}, {500, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(17));

  for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                        Point{375, 375}, Point{250, 250}}) {
    world.add_actuator(p, 250);
  }
  Rng rng(42);
  std::vector<sim::NodeId> sensors;
  for (int i = 0; i < 220; ++i) {
    sensors.push_back(world.add_sensor(
        {rng.uniform(20, 480), rng.uniform(20, 480)}, 100,
        /*min_speed=*/0, /*max_speed=*/2, rng.split()));
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e6);

  core::ReferSystem refer_system(simulator, world, channel, energy, Rng(7));
  bool ok = false;
  refer_system.build([&](bool r) { ok = r; });
  simulator.run_until(30.0);
  if (!ok) {
    std::printf("embedding failed\n");
    return 1;
  }

  const double t0 = simulator.now();
  const double sensing_radius = 60.0;
  int sightings = 0, reports_heard = 0;
  double first_heard = -1, total_latency = 0;
  std::vector<int> heard_by(world.size(), 0);

  std::printf("target enters the field; sensing radius %.0f m\n\n",
              sensing_radius);
  std::printf("%6s %12s %10s %9s %12s\n", "t(s)", "target@", "sightings",
              "heard", "latency(ms)");

  for (int tick = 1; tick <= 80; ++tick) {
    simulator.run_until(t0 + tick);
    const Point tp = target_position(static_cast<double>(tick));
    if (tp.x >= 480) break;
    int tick_sightings = 0;
    for (sim::NodeId s : sensors) {
      if (!world.alive(s)) continue;
      if (distance(world.position(s), tp) > sensing_radius) continue;
      // Nodes sense probabilistically (sampling period).
      if (tick_sightings >= 3) break;  // duty-cycled: a few reporters/tick
      ++tick_sightings;
      ++sightings;
      const double sent_at = simulator.now();
      refer_system.send_to_actuator(
          s, 400, [&, sent_at](const core::DeliveryReport& r) {
            if (!r.delivered) return;
            ++reports_heard;
            total_latency += r.delay_s * 1000;
            ++heard_by[static_cast<std::size_t>(r.final_node)];
            if (first_heard < 0) first_heard = sent_at + r.delay_s - t0;
          });
    }
    if (tick % 10 == 0) {
      std::printf("%6d (%4.0f,%4.0f) %10d %9d %12.1f\n", tick, tp.x, tp.y,
                  sightings, reports_heard,
                  reports_heard ? total_latency / reports_heard : 0.0);
    }
  }
  simulator.run_until(simulator.now() + 2.0);

  std::printf("\ntracking summary:\n");
  std::printf("  sightings reported: %d, heard by actuators: %d\n", sightings,
              reports_heard);
  std::printf("  first actuator alerted %.2f s after intrusion\n",
              first_heard);
  std::printf("  mean report latency: %.1f ms\n",
              reports_heard ? total_latency / reports_heard : 0.0);
  std::printf("  per-actuator sighting counts:");
  for (sim::NodeId a : world.all_of(sim::NodeKind::kActuator)) {
    std::printf(" a%d=%d", a, heard_by[static_cast<std::size_t>(a)]);
  }
  std::printf("\n  overlay replacements during the chase: %llu\n",
              static_cast<unsigned long long>(
                  refer_system.maintenance().stats().replacements));
  return reports_heard > 0 ? 0 : 1;
}
