// Routing explorer: interactive view of the paper's Theorem 3.8.
//
//   $ ./routing_explorer [d k [U V]]
//
// Prints, for a node pair of K(d, k), the greedy shortest path, the full
// disjoint-route table (successor, class, nominal length, forced second
// hop), the canonical disjoint paths, and the ground truth (BFS distance,
// disjointness check).  With no arguments it walks the paper's own
// examples (K(4,4) 0123 -> 2301 and K(2,3) 102 -> 201).
#include <cstdio>
#include <cstdlib>

#include "kautz/graph.hpp"
#include "kautz/routing.hpp"
#include "kautz/verifier.hpp"

using namespace refer::kautz;

namespace {

void explore(int d, int k, const Label& u, const Label& v) {
  const Graph g(d, k);
  std::printf("K(%d,%d): %llu nodes, degree %d, diameter %d\n", d, k,
              static_cast<unsigned long long>(g.node_count()), d, k);
  std::printf("U = %s, V = %s, L(U,V) = %d, Kautz distance = %d (BFS: %d)\n",
              u.to_string().c_str(), v.to_string().c_str(), overlap(u, v),
              kautz_distance(u, v), bfs_distance(g, u, v));

  std::printf("\ngreedy shortest path:");
  for (const Label& hop : shortest_path(u, v)) {
    std::printf(" %s", hop.to_string().c_str());
  }
  std::printf("\n\nTheorem 3.8 disjoint-route table (derived from IDs only):\n");
  std::printf("  %-10s %-10s %-8s %-12s\n", "successor", "class", "length",
              "forced 2nd");
  const auto routes = disjoint_routes(d, u, v);
  for (const auto& r : routes) {
    std::printf("  %-10s %-10s %-8d %-12s\n", r.successor.to_string().c_str(),
                to_string(r.path_class), r.nominal_length,
                r.forced_second_hop ? r.forced_second_hop->to_string().c_str()
                                    : "-");
  }

  std::printf("\ncanonical disjoint paths:\n");
  std::vector<std::vector<Label>> paths;
  for (const auto& r : routes) {
    paths.push_back(canonical_path(u, v, r));
    std::printf("  [%d]", static_cast<int>(paths.back().size()) - 1);
    for (const Label& hop : paths.back()) {
      std::printf(" %s", hop.to_string().c_str());
    }
    std::printf("\n");
  }
  std::printf("cross-disjoint: %s, all simple: %s\n",
              cross_disjoint(paths) ? "yes" : "NO",
              all_simple(paths) ? "yes" : "no");

  const auto cost = route_generation_cost(g, u, v);
  std::printf(
      "route-generation baseline (DFTR-style) would explore %zu nodes to "
      "find the same %zu paths; Theorem 3.8 examined %d successors.\n\n",
      cost.nodes_visited, cost.paths_found, d);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::printf("--- the paper's Figure 2(a) example ---\n");
    explore(4, 4, Label{0, 1, 2, 3}, Label{2, 3, 0, 1});
    std::printf("--- the paper's Figure 1 intra-cell example ---\n");
    explore(2, 3, Label{1, 0, 2}, Label{2, 0, 1});
    return 0;
  }
  if (argc != 3 && argc != 5) {
    std::fprintf(stderr, "usage: %s [d k [U V]]\n", argv[0]);
    return 2;
  }
  const int d = std::atoi(argv[1]);
  const int k = std::atoi(argv[2]);
  if (d < 1 || k < 1 || k > Label::kMaxLength) {
    std::fprintf(stderr, "invalid d/k\n");
    return 2;
  }
  const Graph g(d, k);
  Label u, v;
  if (argc == 5) {
    const auto pu = Label::parse(argv[3]);
    const auto pv = Label::parse(argv[4]);
    if (!pu || !pv || !g.contains(*pu) || !g.contains(*pv) || *pu == *pv) {
      std::fprintf(stderr, "U/V must be distinct nodes of K(%d,%d)\n", d, k);
      return 2;
    }
    u = *pu;
    v = *pv;
  } else {
    u = Label::from_index(0, d, k);
    v = Label::from_index(g.node_count() / 2, d, k);
  }
  explore(d, k, u, v);
  return 0;
}
