// Overlay inspector: build a REFER overlay and dump everything a network
// operator would want to see -- cells, label bindings with positions,
// arc health, roles, CAN zones -- then audit it with the invariant
// validator.
//
//   $ ./overlay_inspector [n_sensors [seed]]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "kautz/graph.hpp"
#include "refer/system.hpp"
#include "refer/validate.hpp"

using namespace refer;

int main(int argc, char** argv) {
  const int n_sensors = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;

  sim::Simulator simulator;
  sim::World world({{0, 0}, {500, 500}}, simulator);
  sim::EnergyTracker energy;
  sim::Channel channel(simulator, world, energy, Rng(3));
  for (const Point p : {Point{125, 125}, Point{375, 125}, Point{125, 375},
                        Point{375, 375}, Point{250, 250}}) {
    world.add_actuator(p, 250);
  }
  Rng rng(seed);
  for (int i = 0; i < n_sensors; ++i) {
    const Point anchor = world.position(static_cast<int>(rng.below(5)));
    const double ang = rng.uniform(0, 6.28318530717958648);
    const double rad = 220 * std::sqrt(rng.uniform());
    world.add_static_sensor(
        clamp({anchor.x + rad * std::cos(ang), anchor.y + rad * std::sin(ang)},
              {{0, 0}, {500, 500}}),
        100);
  }
  energy.resize(world.size());
  energy.set_initial_battery(1e6);

  core::ReferSystem system(simulator, world, channel, energy, Rng(7));
  bool ok = false;
  system.build([&](bool r) { ok = r; });
  simulator.run_until(30.0);
  if (!ok) {
    std::printf("embedding failed (n=%d, seed=%llu)\n", n_sensors,
                static_cast<unsigned long long>(seed));
    return 1;
  }

  const auto& topo = system.topology();
  const kautz::Graph graph(topo.degree(), topo.diameter());
  std::printf("REFER overlay: K(%d,%d) x %zu cells, %zu active sensors\n\n",
              topo.degree(), topo.diameter(), topo.cell_count(),
              topo.active_sensors().size());

  for (core::Cid cid = 0; cid < static_cast<core::Cid>(topo.cell_count());
       ++cid) {
    const auto& cell = topo.cell(cid);
    std::printf("cell %d  centre (%.0f, %.0f)  CAN zone:", cid,
                cell.center().x, cell.center().y);
    for (const Rect& z : topo.can().zones_of(cid)) {
      std::printf(" [%.2f,%.2f]x[%.2f,%.2f]", z.lo.x, z.hi.x, z.lo.y, z.hi.y);
    }
    std::printf("\n  %-6s %-6s %-12s %-10s\n", "KID", "node", "position",
                "kind");
    auto labels = cell.labels();
    std::sort(labels.begin(), labels.end());
    for (const auto& label : labels) {
      const auto node = cell.node_of(label);
      const Point p = world.position(*node);
      std::printf("  %-6s %-6d (%4.0f,%4.0f)  %-10s\n",
                  label.to_string().c_str(), *node, p.x, p.y,
                  world.is_actuator(*node) ? "actuator" : "sensor");
    }
    // Arc health: how many Kautz arcs are directly connected right now.
    int arcs = 0, direct = 0;
    for (const auto& u : labels) {
      for (const auto& v : graph.out_neighbors(u)) {
        const auto nu = cell.node_of(u), nv = cell.node_of(v);
        if (!nu || !nv) continue;
        ++arcs;
        direct += (world.can_reach(*nu, *nv) || world.can_reach(*nv, *nu));
      }
    }
    std::printf("  arc health: %d/%d directly connected\n\n", direct, arcs);
  }

  int wait = 0, sleep = 0;
  for (sim::NodeId s : world.all_of(sim::NodeKind::kSensor)) {
    if (topo.role(s) == core::Role::kWait) ++wait;
    if (topo.role(s) == core::Role::kSleep) ++sleep;
  }
  std::printf("roles: %zu active / %d wait / %d sleep\n",
              topo.active_sensors().size(), wait, sleep);
  std::printf("construction energy: %.1f J\n", energy.construction_total());

  const auto violations = core::validate_topology(topo, world);
  if (violations.empty()) {
    std::printf("invariant audit: clean\n");
  } else {
    std::printf("invariant audit: %zu violations\n", violations.size());
    for (const auto& v : violations) std::printf("  - %s\n", v.c_str());
  }
  return violations.empty() ? 0 : 1;
}
